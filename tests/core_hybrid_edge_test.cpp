// Edge cases and failure-injection scenarios for the hybrid scheduler:
// degenerate configurations, racing events, and pathological workloads.
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

Mechanism NPaa() { return {NoticePolicy::kNone, ArrivalPolicy::kPaa}; }
Mechanism NSpaa() { return {NoticePolicy::kNone, ArrivalPolicy::kSpaa}; }
Mechanism CuaPaa() { return {NoticePolicy::kCua, ArrivalPolicy::kPaa}; }
Mechanism CupSpaa() { return {NoticePolicy::kCup, ArrivalPolicy::kSpaa}; }

TEST(EdgeTest, ZeroWarningWindowPreemptsImmediately) {
  HybridConfig config = TestConfig(NPaa());
  config.engine.drain_warning = 0;
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);  // no 120 s delay
}

TEST(EdgeTest, NoticeAtExactArrivalTime) {
  // Notice and arrival land on the same timestamp; the notice event (kind 4)
  // processes before the submit (kind 5) in the same batch.
  TraceBuilder builder(64);
  builder.AddOnDemand(1000, 32, 500, 0, 600, NoticeClass::kAccurate,
                      /*notice=*/1000, /*predicted=*/1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(CuaPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(EdgeTest, OnDemandFullMachine) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 50000, 100, 100000);
  builder.AddOnDemand(5000, 64, 500, 0, 600);  // wants everything
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.rigid_preempt_ratio, 1.0);
}

TEST(EdgeTest, BackToBackOnDemandStorm) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 100000, 100, 200000);
  for (int i = 0; i < 8; ++i) {
    builder.AddOnDemand(5000 + i * 30, 16, 2000, 0, 3000);
  }
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 9u);
  // 4 of 8 fit simultaneously (4x16 = machine); the rest queue behind them,
  // a pure capacity collision (Observation 9).
  EXPECT_GE(r.od_instant_rate, 0.5);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");
}

TEST(EdgeTest, PreemptedJobPreemptedAgain) {
  // The resumed rigid job gets preempted a second time by a later arrival.
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 50000, 100, 100000);
  builder.AddOnDemand(5000, 64, 1000, 0, 1500);
  builder.AddOnDemand(20000, 64, 1000, 0, 1500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_GE(r.preemptions, 2u);
  const SimResult final = h.Finalize();
  EXPECT_EQ(final.jobs_killed, 0u);
}

TEST(EdgeTest, MalleableMinEqualsMax) {
  // A "malleable" job with no flexibility: SPAA cannot shrink it, so PAA
  // fallback drains it whole.
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 64, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.shrinks, 0u);
  EXPECT_GE(r.preemptions, 1u);
}

TEST(EdgeTest, CupTimeoutRacesPlannedPreemption) {
  // CUP schedules a planned preemption at the predicted arrival; the job
  // never arrives on time, the reservation times out first (predicted +
  // 10 min), and the plan must not fire afterwards.
  HybridConfig config = TestConfig(CupSpaa());
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 90000, 100, 100000);
  const SimTime predicted = 5000;
  // Arrives 25 min late: past the 10-min timeout.
  builder.AddOnDemand(predicted + 25 * kMinute, 32, 500, 0, 600, NoticeClass::kLate,
                      predicted - 1200, predicted);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(predicted + 11 * kMinute);
  // After the timeout, no reservation and the rigid job is still whole or
  // already resubmitted exactly once (the planned preemption at `predicted`
  // fired before the timeout — that is legal CUP behaviour).
  EXPECT_FALSE(h.sched_.reservations().Has(1));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.jobs_killed, 0u);
}

TEST(EdgeTest, EverythingArrivesAtOnce) {
  TraceBuilder builder(64);
  for (int i = 0; i < 6; ++i) builder.AddRigid(0, 16, 1000 + i, 0, 2000);
  builder.AddOnDemand(0, 16, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 7u);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");
}

TEST(EdgeTest, SingleNodeMachine) {
  TraceBuilder builder(1);
  builder.AddRigid(0, 1, 100, 0, 100);
  builder.AddOnDemand(10, 1, 50, 0, 50);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);  // preempts the rigid job
}

TEST(EdgeTest, DrainVictimFinishesBeforeWarning) {
  // The drained malleable job naturally completes before the 2-minute
  // warning expires; the on-demand job picks its nodes up via routing.
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 5060, 0, 10000);  // ends at t=5060
  builder.AddOnDemand(5000, 32, 500, 0, 600);       // drain would end 5120
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.preemptions, 0u);  // never actually drained
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);  // 60 s delay < 5 min threshold
}

TEST(EdgeTest, ShrunkJobDrainedByLaterArrival) {
  // A malleable job shrunk for one on-demand job gets fully drained by a
  // second, larger one.
  TraceBuilder builder(64);
  builder.AddMalleable(0, 60, 12, 50000, 100, 120000);
  builder.AddOnDemand(5000, 30, 10000, 0, 12000);
  builder.AddOnDemand(10000, 34, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_GE(r.shrinks, 1u);
  EXPECT_EQ(r.jobs_killed, 0u);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");
}

TEST(EdgeTest, BaselineIgnoresNotices) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600, NoticeClass::kAccurate, 4000, 5000);
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run(4500);
  EXPECT_FALSE(h.sched_.reservations().Has(1));  // notice ignored
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 2u);
}

TEST(EdgeTest, NMechanismIgnoresNoticesButActsAtArrival) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600, NoticeClass::kAccurate, 4000, 5000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(4500);
  EXPECT_FALSE(h.sched_.reservations().Has(1));  // N ignores the notice
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);  // but PAA still serves it
}

}  // namespace
}  // namespace hs
