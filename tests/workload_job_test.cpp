#include "workload/job.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

JobRecord ValidRigid() {
  JobRecord j;
  j.id = 1;
  j.project = 0;
  j.klass = JobClass::kRigid;
  j.submit_time = 100;
  j.size = 128;
  j.min_size = 128;
  j.compute_time = 3600;
  j.setup_time = 200;
  j.estimate = 7200;
  return j;
}

TEST(JobRecordTest, ValidRigidPasses) { EXPECT_EQ(ValidRigid().Validate(), ""); }

TEST(JobRecordTest, NegativeIdRejected) {
  auto j = ValidRigid();
  j.id = -1;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, ZeroSizeRejected) {
  auto j = ValidRigid();
  j.size = 0;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, MinSizeAboveSizeRejected) {
  auto j = ValidRigid();
  j.klass = JobClass::kMalleable;
  j.min_size = 256;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, NonMalleableWithFlexibleMinRejected) {
  auto j = ValidRigid();
  j.min_size = 64;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, EstimateBelowWallRejected) {
  auto j = ValidRigid();
  j.estimate = j.compute_time;  // below setup + compute
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, OnDemandAccurateNoticeConsistency) {
  auto j = ValidRigid();
  j.klass = JobClass::kOnDemand;
  j.notice = NoticeClass::kAccurate;
  j.notice_time = 50;
  j.predicted_arrival = 100;
  EXPECT_EQ(j.Validate(), "");
  j.predicted_arrival = 99;  // accurate must equal submit
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, EarlyArrivalMustPrecedePrediction) {
  auto j = ValidRigid();
  j.klass = JobClass::kOnDemand;
  j.notice = NoticeClass::kEarly;
  j.notice_time = 50;
  j.predicted_arrival = 150;
  EXPECT_EQ(j.Validate(), "");  // submit=100 in [50,150]
  j.predicted_arrival = 90;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, LateArrivalMustFollowPrediction) {
  auto j = ValidRigid();
  j.klass = JobClass::kOnDemand;
  j.notice = NoticeClass::kLate;
  j.notice_time = 20;
  j.predicted_arrival = 80;
  EXPECT_EQ(j.Validate(), "");
  j.predicted_arrival = 120;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, NonOnDemandWithNoticeRejected) {
  auto j = ValidRigid();
  j.notice_time = 10;
  EXPECT_NE(j.Validate(), "");
}

TEST(JobRecordTest, TotalWorkIsComputeTimesSize) {
  const auto j = ValidRigid();
  EXPECT_EQ(j.total_work(), 3600LL * 128);
}

TEST(JobRecordTest, ClassToString) {
  EXPECT_STREQ(ToString(JobClass::kRigid), "rigid");
  EXPECT_STREQ(ToString(JobClass::kOnDemand), "on-demand");
  EXPECT_STREQ(ToString(JobClass::kMalleable), "malleable");
  EXPECT_STREQ(ToString(NoticeClass::kAccurate), "accurate");
}

}  // namespace
}  // namespace hs
