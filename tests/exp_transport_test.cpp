// Network-chaos differential tests for the multi-host TCP transport: a
// grid dispatched over real hs_agent processes on loopback must merge to
// the exact bytes of a clean single-process run — under any completion
// order, host count, and injected network-fault schedule (connection
// drops mid-stream, agent SIGKILL, torn frames, stalled heartbeats).
//
// Network faults ride the same HS_FAULT variable as worker faults
// (exp/fault_plan.h): the agents inherit the plan from this process's
// environment at spawn time, so each test arms HS_FAULT *before* starting
// its agents and the orchestrator side stays fault-free.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.h"
#include "exp/sharded_runner.h"
#include "exp/transport.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/subprocess.h"
#include "util/thread_pool.h"

namespace hs {
namespace {

// --- helpers ----------------------------------------------------------------

/// Sets HS_FAULT for the enclosing scope (before agents spawn, so they
/// inherit it), unsetting it on exit.
class FaultEnv {
 public:
  explicit FaultEnv(const std::string& plan) {
    setenv("HS_FAULT", plan.c_str(), 1);
  }
  ~FaultEnv() { unsetenv("HS_FAULT"); }
  FaultEnv(const FaultEnv&) = delete;
  FaultEnv& operator=(const FaultEnv&) = delete;
};

std::vector<SimSpec> TinyGrid() {
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&SPAA", "CUA&SPAA"}) {
    SimSpec base = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5/preset=tiny");
    for (const SimSpec& seeded : SeedSweep(base, 2, 300)) specs.push_back(seeded);
  }
  return specs;
}

/// The byte-stable CSV of a grid: canonical spec order, wall-clock stripped.
std::string InProcessCsv(const std::vector<SimSpec>& specs) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ThreadPool pool(4);
  ExperimentRunner runner(pool);
  runner.Run(specs, &merged);
  merged.Finish();
  return out.str();
}

struct FabricRun {
  std::string csv;
  FabricReport report;
};

/// Runs the grid through the fabric exactly as bench_spec_grid does.
FabricRun RunSharded(const std::vector<SimSpec>& specs,
                     ShardedRunnerOptions options) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ShardedRunner runner(std::move(options));
  runner.Run(specs, &merged);
  for (const FabricCellError& cell : runner.last_report().quarantined) {
    merged.Skip(cell.spec_index);
  }
  merged.Finish();
  return FabricRun{out.str(), runner.last_report()};
}

ShardedRunnerOptions TcpOptions(const std::string& hosts, int max_attempts,
                                std::size_t units = 4) {
  ShardedRunnerOptions options;
  options.shards = units;
  options.hosts = hosts;
  options.retry.max_attempts = max_attempts;
  options.retry.backoff_initial_s = 0.01;  // keep chaos trials fast
  options.retry.backoff_max_s = 0.05;
  return options;
}

/// One real hs_agent process on an ephemeral loopback port, discovered
/// via --port-file. The destructor kills and reaps it.
class AgentProc {
 public:
  AgentProc() : dir_(MakeTempDir("hs-transport-test-")) {
    const std::string exe_dir = SelfExeDir();
    proc_ = Subprocess::Spawn(
        {exe_dir + "/hs_agent", "--port-file=" + dir_ + "/agent.port",
         "--worker-bin=" + exe_dir + "/hs_worker", "--work-dir=" + dir_ + "/work"},
        dir_ + "/agent.stdout", dir_ + "/agent.stderr");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        const std::string text = ReadTextFile(dir_ + "/agent.port");
        port_ = static_cast<std::uint16_t>(std::stoi(text));
        break;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    if (port_ == 0) {
      proc_.Kill();
      proc_.Wait();
      throw std::runtime_error("hs_agent did not publish a port within 10s; "
                               "stderr: " + dir_ + "/agent.stderr");
    }
  }

  ~AgentProc() {
    proc_.Kill();
    proc_.Wait();
    RemoveTreeBestEffort(dir_);
  }

  std::uint16_t port() const { return port_; }
  std::string Label() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  std::string dir_;
  Subprocess proc_;
  std::uint16_t port_ = 0;
};

/// An endpoint that is guaranteed dead: binds an ephemeral port, then
/// closes it, so connects are refused. (The port could in principle be
/// reused before the test connects; ephemeral-range reuse within
/// milliseconds is vanishingly unlikely.)
std::uint16_t DeadPort() {
  TcpListener listener(0);
  return listener.port();
}

// --- ParseHostList -----------------------------------------------------------

TEST(ParseHostListTest, ParsesValidLists) {
  EXPECT_TRUE(ParseHostList("").empty());
  const std::vector<HostEndpoint> one = ParseHostList("127.0.0.1:9000");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].host, "127.0.0.1");
  EXPECT_EQ(one[0].port, 9000);
  EXPECT_EQ(one[0].Label(), "127.0.0.1:9000");
  const std::vector<HostEndpoint> two = ParseHostList("alpha:1, beta:65535");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].host, "alpha");
  EXPECT_EQ(two[0].port, 1);
  EXPECT_EQ(two[1].host, "beta");
  EXPECT_EQ(two[1].port, 65535);
}

TEST(ParseHostListTest, RejectsMalformedLists) {
  EXPECT_THROW(ParseHostList("nohost"), std::invalid_argument);
  EXPECT_THROW(ParseHostList(":9000"), std::invalid_argument);
  EXPECT_THROW(ParseHostList("host:"), std::invalid_argument);
  EXPECT_THROW(ParseHostList("host:0"), std::invalid_argument);
  EXPECT_THROW(ParseHostList("host:65536"), std::invalid_argument);
  EXPECT_THROW(ParseHostList("host:12x"), std::invalid_argument);
  EXPECT_THROW(ParseHostList("a:1,,b:2"), std::invalid_argument);
}

// --- clean multi-agent runs --------------------------------------------------

TEST(TransportTest, CleanTwoAgentRunIsByteIdentical) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  AgentProc a, b;
  const FabricRun run =
      RunSharded(specs, TcpOptions(a.Label() + "," + b.Label(),
                                   /*max_attempts=*/1));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_EQ(run.report.conn_failures, 0u);
  EXPECT_EQ(run.report.workers_launched, run.report.shard_count);
  EXPECT_EQ(run.report.rows_merged, specs.size());
  EXPECT_NE(run.report.transport.find("tcp (2 agents"), std::string::npos)
      << run.report.transport;
}

TEST(TransportTest, SingleAgentDrainsTheWholeQueue) {
  // Work stealing degenerates gracefully: one agent, more units than
  // slots — the queue drains serially through the single connection slot.
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  AgentProc a;
  const FabricRun run =
      RunSharded(specs, TcpOptions(a.Label(), /*max_attempts=*/1,
                                   /*units=*/3));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_EQ(run.report.shard_count, 3u);
  EXPECT_EQ(run.report.workers_launched, 3u);
}

// --- worker faults travel through the wire unchanged -------------------------

TEST(TransportTest, WorkerCrashHealsOverTcp) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const FaultEnv fault("crash-before-cell=2;exit-code=9");
  AgentProc a, b;  // spawned after FaultEnv: workers inherit the plan
  const FabricRun run = RunSharded(
      specs, TcpOptions(a.Label() + "," + b.Label(), /*max_attempts=*/3));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_GE(run.report.retries, 1u);
  EXPECT_EQ(run.report.bisections, 0u);
  EXPECT_EQ(run.report.workers_launched,
            run.report.shard_count + run.report.retries);
}

// --- dead hosts --------------------------------------------------------------

TEST(TransportTest, DeadHostIsRoutedAround) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  AgentProc live;
  const std::uint16_t dead = DeadPort();
  const FabricRun run = RunSharded(
      specs, TcpOptions(live.Label() + ",127.0.0.1:" + std::to_string(dead),
                        /*max_attempts=*/1));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_GE(run.report.conn_failures, 1u);
  // Routed-around dispatches leave no launch accounting behind.
  EXPECT_EQ(run.report.workers_launched, run.report.shard_count);
}

TEST(TransportTest, AllHostsDeadFailsLoudly) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::uint16_t dead1 = DeadPort();
  const std::uint16_t dead2 = DeadPort();
  ShardedRunnerOptions options =
      TcpOptions("127.0.0.1:" + std::to_string(dead1) + ",127.0.0.1:" +
                     std::to_string(dead2),
                 /*max_attempts=*/1, /*units=*/2);
  options.connect_timeout_s = 1.0;
  ShardedRunner runner(options);
  try {
    runner.Run(specs);
    FAIL() << "an unreachable fabric must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("could not be dispatched"), std::string::npos) << what;
    EXPECT_NE(what.find("unreachable"), std::string::npos) << what;
  }
}

// --- network faults mid-unit -------------------------------------------------

TEST(TransportTest, AgentKilledMidStreamHealsElsewhere) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const FaultEnv fault("kill-agent-at-cell=3;attempts=1");
  AgentProc a, b;
  const FabricRun run = RunSharded(
      specs, TcpOptions(a.Label() + "," + b.Label(), /*max_attempts=*/3));
  // The agent serving cell 3's unit SIGKILLs itself mid-stream; the rows
  // it already forwarded are kept, the missing ones re-run on the
  // survivor, and the merged bytes still match the single-process run.
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_GE(run.report.retries, 1u);
  EXPECT_EQ(run.report.rows_merged, specs.size());
}

TEST(TransportTest, BogusHeaderGetsErrAndAgentSurvives) {
  AgentProc a;
  {
    Socket probe = ConnectTcp("127.0.0.1", a.port(), 5.0);
    std::string greeting;
    ASSERT_EQ(probe.RecvLineWithTimeout(5.0, &greeting), RecvLineStatus::kLine);
    EXPECT_EQ(greeting, kFabricGreeting);
    SendLine(probe, "unit origin=banana");
    std::string reply;
    ASSERT_EQ(probe.RecvLineWithTimeout(5.0, &reply), RecvLineStatus::kLine);
    EXPECT_EQ(reply.rfind("err msg=", 0), 0u) << reply;
  }
  // The protocol error poisoned nothing: the same agent still serves a
  // full grid correctly afterwards.
  const std::vector<SimSpec> specs = TinyGrid();
  const FabricRun run =
      RunSharded(specs, TcpOptions(a.Label(), /*max_attempts=*/1, /*units=*/2));
  EXPECT_EQ(run.csv, InProcessCsv(specs));
  EXPECT_TRUE(run.report.complete());
}

// --- the differential: seeded network-fault schedules ------------------------

TEST(TransportTest, SeededNetworkFaultScheduleDifferential) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xFAB41Cu + static_cast<std::uint64_t>(trial));
    const long long cell =
        rng.UniformInt(0, static_cast<std::int64_t>(specs.size()) - 1);
    std::string plan;
    ShardedRunnerOptions options;
    options.retry.max_attempts = 3;
    options.retry.backoff_initial_s = 0.01;
    options.retry.backoff_max_s = 0.05;
    options.retry.jitter_seed = static_cast<std::uint64_t>(trial);
    options.shards = 4;
    switch (trial % 4) {
      case 0:  // connection dropped instead of forwarding a row
        plan = "drop-conn-at-cell=" + std::to_string(cell);
        break;
      case 1:  // half a frame, no newline, then hangup
        plan = "torn-frame-at-cell=" + std::to_string(cell);
        break;
      case 2:  // the whole agent SIGKILLed mid-stream: a host dies
        plan = "kill-agent-at-cell=" + std::to_string(cell);
        break;
      default:  // open connection, silent forever: stalled heartbeat
        plan = "stall-at-cell=" + std::to_string(cell);
        options.shard_timeout_s = 1.0;
        break;
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + ": HS_FAULT=" + plan);
    const FaultEnv fault(plan);
    // Fresh agents per trial: a kill-agent trial leaves a corpse behind,
    // and every trial must start from two healthy hosts.
    AgentProc a, b;
    options.hosts = a.Label() + "," + b.Label();
    const FabricRun run = RunSharded(specs, options);
    // Every schedule heals on retry (attempts=1 default): the fabric must
    // deliver the exact single-process bytes, every trial.
    EXPECT_EQ(run.csv, golden);
    EXPECT_TRUE(run.report.complete());
    EXPECT_EQ(run.report.rows_merged, specs.size());
    if (trial % 4 == 3) EXPECT_GE(run.report.hang_kills, 1u);
  }
}

}  // namespace
}  // namespace hs
