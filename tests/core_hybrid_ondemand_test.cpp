// PAA / SPAA arrival behaviour (§III-B2) and lease settlement (§III-B3).
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

Mechanism NPaa() { return {NoticePolicy::kNone, ArrivalPolicy::kPaa}; }
Mechanism NSpaa() { return {NoticePolicy::kNone, ArrivalPolicy::kSpaa}; }

TEST(PaaTest, OnDemandStartsInstantlyOnFreeNodes) {
  TraceBuilder builder(64);
  builder.AddOnDemand(100, 32, 500, 0, 500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  EXPECT_EQ(r.preemptions, 0u);
}

TEST(PaaTest, RigidVictimPreemptedAtArrival) {
  TraceBuilder builder(64);
  const JobId rigid = builder.AddRigid(0, 64, 10000, 100, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(5000);
  // At arrival the rigid job (whole machine) is the only victim: killed.
  EXPECT_FALSE(h.sched_.engine().IsRunning(rigid));
  EXPECT_TRUE(h.sched_.engine().IsRunning(1));  // on-demand started
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  EXPECT_DOUBLE_EQ(r.rigid_preempt_ratio, 1.0);
  EXPECT_GT(r.lost_node_hours, 0.0);  // no checkpoints: progress lost
}

TEST(PaaTest, PreemptedJobResubmittedWithOriginalSubmitTime) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 10000, 0, 20000);
  builder.AddOnDemand(5000, 64, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(5000);
  const WaitingJob* w = h.sched_.engine().queue().Find(0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->first_submit, 0);
  EXPECT_EQ(w->restarts, 1);
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 2u);
}

TEST(PaaTest, InsufficientPreemptableNodesMeansWaitNoPreemption) {
  TraceBuilder builder(64);
  // A running on-demand job occupies 40 nodes; on-demand jobs are never
  // preempted, so a 32-node request cannot be satisfied (only 24 left).
  builder.AddOnDemand(0, 40, 10000, 0, 10000);
  builder.AddOnDemand(100, 32, 500, 0, 500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(200);
  EXPECT_TRUE(h.sched_.engine().IsRunning(0));   // not preempted
  EXPECT_TRUE(h.sched_.engine().IsWaiting(1));   // waiting at queue head
  EXPECT_EQ(h.Finalize().preemptions, 0u);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  // The second on-demand job started only after the first completed.
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 0.5);
}

TEST(PaaTest, CheapestVictimChosenFirst) {
  HybridConfig config = TestConfig(NPaa());
  TraceBuilder builder(64);
  // Malleable victim (cost: setup only) and rigid victim (cost: lost work).
  const JobId rigid = builder.AddRigid(0, 32, 10000, 100, 20000);
  const JobId mall = builder.AddMalleable(0, 32, 8, 10000, 100, 20000);
  builder.AddOnDemand(5000, 30, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(5000 + 3 * kMinute);
  // The malleable job (cheaper) was drained; the rigid job kept running.
  EXPECT_TRUE(h.sched_.engine().IsRunning(rigid));
  EXPECT_TRUE(h.sched_.engine().IsWaiting(mall));
  EXPECT_TRUE(h.sched_.engine().IsRunning(2));
}

TEST(PaaTest, MalleableDrainDelaysStartByWarning) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  // Start delayed by the 2-minute warning: instant under the tolerant
  // definition, not under the strict one.
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 0.0);
  EXPECT_NEAR(r.od_avg_delay_s, 120.0, 1.0);
}

TEST(SpaaTest, ShrinkPreferredOverPreemption) {
  TraceBuilder builder(64);
  const JobId mall = builder.AddMalleable(0, 60, 12, 10000, 0, 20000);
  builder.AddOnDemand(5000, 40, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(5000);
  // The arrival reservation grabs the 4 free nodes; the remaining deficit of
  // 36 is covered by shrinking (supply 60 - 12 = 48), so nothing is
  // preempted and the on-demand job starts immediately.
  EXPECT_TRUE(h.sched_.engine().IsRunning(mall));
  EXPECT_EQ(h.sched_.engine().Running(mall)->alloc, 24);
  EXPECT_TRUE(h.sched_.engine().IsRunning(1));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(r.shrinks, 1u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  EXPECT_DOUBLE_EQ(r.malleable_preempt_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.malleable_shrink_ratio, 1.0);
}

TEST(SpaaTest, EvenShrinkAcrossMultipleJobs) {
  TraceBuilder builder(64);
  const JobId m1 = builder.AddMalleable(0, 30, 6, 10000, 0, 20000);
  const JobId m2 = builder.AddMalleable(0, 30, 6, 10000, 0, 20000);
  builder.AddOnDemand(5000, 24, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(5000);
  // 4 free nodes are grabbed at arrival; the 20-node deficit splits evenly
  // across the two jobs (equal shrinkable capacity of 24 each): 10 + 10.
  EXPECT_EQ(h.sched_.engine().Running(m1)->alloc, 20);
  EXPECT_EQ(h.sched_.engine().Running(m2)->alloc, 20);
  EXPECT_TRUE(h.sched_.engine().IsRunning(2));
}

TEST(SpaaTest, FallsBackToPaaWhenSupplyInsufficient) {
  TraceBuilder builder(64);
  const JobId mall = builder.AddMalleable(0, 32, 30, 10000, 100, 20000);  // supply 2
  const JobId rigid = builder.AddRigid(0, 32, 10000, 100, 20000);
  builder.AddOnDemand(5000, 40, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  (void)mall;
  (void)rigid;
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_GE(r.preemptions, 1u);   // PAA fallback preempted someone
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
}

TEST(LeaseTest, ShrunkLenderExpandsBackAfterOnDemandCompletes) {
  TraceBuilder builder(64);
  const JobId mall = builder.AddMalleable(0, 60, 12, 50000, 0, 100000);
  builder.AddOnDemand(5000, 40, 1000, 0, 1500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(5500);
  EXPECT_EQ(h.sched_.engine().Running(mall)->alloc, 24);
  h.Run(7000);  // on-demand finished at 6000
  EXPECT_EQ(h.sched_.engine().Running(mall)->alloc, 60);  // expanded back
  const SimResult mid = h.Finalize();
  EXPECT_GE(mid.expands, 1u);
}

TEST(LeaseTest, PreemptedLenderResumesWhenOnDemandCompletes) {
  TraceBuilder builder(64);
  const JobId rigid = builder.AddRigid(0, 64, 50000, 0, 100000);
  builder.AddOnDemand(5000, 64, 1000, 0, 1500);
  HybridConfig config = TestConfig(NPaa());
  config.hold_returned_nodes = true;
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(5500);
  EXPECT_TRUE(h.sched_.engine().IsWaiting(rigid));
  h.Run(6100);  // on-demand finishes at 6000; lender resumes immediately
  EXPECT_TRUE(h.sched_.engine().IsRunning(rigid));
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 2u);
}

TEST(LeaseTest, PartialReturnHoldsNodesForLender) {
  // The on-demand job borrows the whole machine from a preempted rigid job,
  // but a second rigid job (submitted meanwhile) grabs half at completion
  // time... it cannot: the returned nodes are held for the lender.
  TraceBuilder builder(64);
  const JobId lender = builder.AddRigid(0, 64, 50000, 0, 100000);
  builder.AddOnDemand(5000, 32, 1000, 0, 1500);
  const JobId late = builder.AddRigid(5500, 32, 1000, 0, 2000);
  HybridConfig config = TestConfig(NPaa());
  config.hold_returned_nodes = true;  // exercise the literal-hold variant
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(5400);
  EXPECT_TRUE(h.sched_.engine().IsWaiting(lender));
  // The on-demand job took 32 of the lender's nodes; the other 32 went back
  // to the free pool and the lender (queue head, FCFS) reclaims them through
  // its reservation / the scheduling pass. The late rigid job must not
  // overtake the lender.
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  (void)late;
}

TEST(LeaseTest, MultipleOnDemandCompete) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 50000, 0, 100000);
  builder.AddOnDemand(5000, 32, 2000, 0, 3000);
  builder.AddOnDemand(5100, 32, 2000, 0, 3000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_EQ(r.od_jobs, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);  // both served via preemption
}

TEST(OnDemandTest, NeverPreemptsAnotherOnDemand) {
  TraceBuilder builder(64);
  builder.AddOnDemand(0, 64, 10000, 0, 10000);
  builder.AddOnDemand(100, 64, 500, 0, 500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(200);
  EXPECT_TRUE(h.sched_.engine().IsRunning(0));
  EXPECT_FALSE(h.sched_.engine().IsRunning(1));
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 2u);
}

TEST(OnDemandTest, DecisionLatencyRecorded) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 10000, 0, 20000);
  builder.AddOnDemand(5000, 32, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_GE(r.decisions, 1u);
  EXPECT_LT(r.decision_max_us, 10'000.0);  // Observation 10: << 10 ms
}

}  // namespace
}  // namespace hs
