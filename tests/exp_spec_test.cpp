// SimSpec: parse/print round-trips, canonicalization, strict rejection of
// malformed specs, CLI construction, and materialization into configs.
#include "exp/sim_spec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/mechanism.h"
#include "sched/policy.h"

namespace hs {
namespace {

/// A tiny valid SWF file on disk (removed at destruction) so specs using
/// the "swf" replay preset validate.
class TempSwfFile {
 public:
  TempSwfFile() : path_(::testing::TempDir() + "simspec_test_trace.swf") {
    std::ofstream out(path_);
    out << "; MaxNodes: 64\n";
    // job submit wait run used_procs avg_cpu mem req_procs req_time ...
    out << "1 0 0 600 16 -1 -1 16 900 -1 1 1 1 -1 -1 -1 -1 -1\n";
    out << "2 100 0 300 8 -1 -1 8 400 -1 1 1 1 -1 -1 -1 -1 -1\n";
  }
  ~TempSwfFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SimSpecTest, DefaultsRoundTrip) {
  const SimSpec spec;
  EXPECT_EQ(spec.ToString(), "baseline/FCFS/W5");
  EXPECT_EQ(SimSpec::Parse(spec.ToString()), spec);
  EXPECT_EQ(spec.Validate(), "");
}

TEST(SimSpecTest, ParsesTheReadmeExample) {
  const SimSpec spec = SimSpec::Parse("CUP&SPAA/fcfs/W5/seed=7");
  EXPECT_EQ(spec.mechanism, "CUP&SPAA");
  EXPECT_EQ(spec.policy, "FCFS");  // canonicalized
  EXPECT_EQ(spec.notice_mix, "W5");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.preset, "paper");
  EXPECT_EQ(SimSpec::Parse(spec.ToString()), spec);
}

TEST(SimSpecTest, RoundTripsEveryMechanismPolicyPresetCombination) {
  const TempSwfFile swf;
  for (const std::string& mechanism : MechanismNames()) {
    for (const std::string& policy : PolicyNames()) {
      for (const std::string& preset : ScenarioPresetNames()) {
        for (const NoticeMix& mix : PaperNoticeMixes()) {
          SimSpec spec;
          spec.mechanism = mechanism;
          spec.policy = policy;
          spec.preset = preset;
          spec.notice_mix = mix.name;
          spec.weeks = 3;
          spec.seed = 11;
          spec.overrides["ckpt_scale"] = "0.5";
          // The replay preset needs its trace file to validate.
          if (preset == "swf") spec.SetOverride("swf", swf.path());
          EXPECT_EQ(SimSpec::Parse(spec.ToString()), spec)
              << "spec: " << spec.ToString();
          EXPECT_EQ(spec.Validate(), "") << "spec: " << spec.ToString();
        }
      }
    }
  }
}

TEST(SimSpecTest, AcceptsTheBaselineDisplayName) {
  const SimSpec spec = SimSpec::Parse("FCFS/EASY/SJF/W2");
  EXPECT_EQ(spec.mechanism, "baseline");
  EXPECT_EQ(spec.policy, "SJF");
  EXPECT_EQ(spec.notice_mix, "W2");
}

TEST(SimSpecTest, PartialSpecsUseDefaults) {
  const SimSpec spec = SimSpec::Parse("CUA&SPAA");
  EXPECT_EQ(spec.policy, "FCFS");
  EXPECT_EQ(spec.notice_mix, "W5");
  EXPECT_EQ(spec.weeks, 1);
  const SimSpec with_kv = SimSpec::Parse("CUA&SPAA/weeks=4");
  EXPECT_EQ(with_kv.weeks, 4);
  EXPECT_EQ(with_kv.policy, "FCFS");
}

TEST(SimSpecTest, RejectsInvalidSpecs) {
  EXPECT_THROW(SimSpec::Parse(""), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("NOPE&PAA/FCFS/W5"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&NOPE/FCFS/W5"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/NOPOLICY/W5"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W9"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/preset=unknown"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/typo_key=3"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/weeks=zero"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/weeks=0"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/ckpt_scale=-1"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/backfill=maybe"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/FCFS/W5/W2"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA//W5"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/seed=1/W2"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("CUA&SPAA/"), std::invalid_argument);
  EXPECT_THROW(SimSpec::Parse("FCFS/EASY/"), std::invalid_argument);
}

TEST(SimSpecTest, ErrorsNameTheOffendingToken) {
  try {
    SimSpec::Parse("CUX&PAA/FCFS/W5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("CUX"), std::string::npos);
  }
  try {
    SimSpec::Parse("CUA&SPAA/FCFS/W5/ckpt_scal=0.5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ckpt_scal"), std::string::npos);
  }
}

TEST(SimSpecTest, OverridesMaterializeIntoConfigs) {
  const SimSpec spec = SimSpec::Parse(
      "CUA&SPAA/SJF/W2/preset=tiny/weeks=2/seed=9/"
      "ckpt_scale=0.5/partition=64/backfill=0/od_share=0.2/nodes=256");
  const HybridConfig config = spec.BuildConfig();
  EXPECT_EQ(config.mechanism, ParseMechanism("CUA&SPAA"));
  EXPECT_EQ(config.engine.policy, "SJF");
  EXPECT_DOUBLE_EQ(config.engine.checkpoint.interval_scale, 0.5);
  EXPECT_EQ(config.static_od_partition, 64);
  EXPECT_FALSE(config.backfill_on_reserved);

  const ScenarioConfig scenario = spec.BuildScenario();
  EXPECT_EQ(scenario.theta.num_nodes, 256);
  EXPECT_EQ(scenario.theta.projects.max_job_size, 256);
  EXPECT_DOUBLE_EQ(scenario.types.on_demand_project_share, 0.2);
  EXPECT_EQ(scenario.notice_mix, "W2");
  EXPECT_EQ(scenario.theta.weeks, 2);
}

TEST(SimSpecTest, ScenarioKeyIgnoresSchedulerOverrides) {
  const SimSpec a = SimSpec::Parse("baseline/FCFS/W5/preset=tiny/seed=3/ckpt_scale=0.5");
  const SimSpec b = SimSpec::Parse("CUA&SPAA/SJF/W5/preset=tiny/seed=3/backfill=0");
  EXPECT_EQ(a.ScenarioKey(), b.ScenarioKey());
  const SimSpec c = SimSpec::Parse("baseline/FCFS/W5/preset=tiny/seed=3/nodes=256");
  EXPECT_NE(a.ScenarioKey(), c.ScenarioKey());
}

TEST(SimSpecTest, FromCliRefinesSpecFlag) {
  const char* argv[] = {"prog", "--spec=CUA&SPAA/FCFS/W5", "--seed=9",
                        "--policy=sjf", "--ckpt_scale=0.5"};
  const CliArgs args(5, argv);
  const SimSpec spec = SimSpec::FromCli(args);
  EXPECT_EQ(spec.mechanism, "CUA&SPAA");
  EXPECT_EQ(spec.policy, "SJF");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.overrides.at("ckpt_scale"), "0.5");
  EXPECT_NO_THROW(args.RejectUnknown());
}

TEST(SimSpecTest, FromCliLeavesTypoFlagsForRejectUnknown) {
  const char* argv[] = {"prog", "--mechanizm=CUA&SPAA"};
  const CliArgs args(2, argv);
  (void)SimSpec::FromCli(args);
  EXPECT_THROW(args.RejectUnknown(), std::invalid_argument);
}

TEST(SimSpecTest, SetOverrideRejectsBadKeysAndValues) {
  SimSpec spec;
  spec.SetOverride("od_share", "0.2");
  EXPECT_EQ(spec.overrides.at("od_share"), "0.2");
  EXPECT_THROW(spec.SetOverride("od_share", "1.5"), std::invalid_argument);
  EXPECT_THROW(spec.SetOverride("bogus", "1"), std::invalid_argument);
  EXPECT_THROW(spec.SetOverride("partition", "-4"), std::invalid_argument);
}

TEST(SimSpecTest, KnownOverridesHaveHelpText) {
  ASSERT_FALSE(KnownOverrides().empty());
  for (const OverrideKey& key : KnownOverrides()) {
    EXPECT_FALSE(key.key.empty());
    EXPECT_FALSE(key.help.empty());
  }
}

// The shard files of the multi-process runner serialize every cell as its
// canonical spec string, so the print/parse round-trip below is the wire
// format of the scatter phase — it must hold for every registered override
// key, not a hand-picked subset. Looping OverrideTable() via
// KnownOverrides() means a newly registered key is covered (and must ship
// a valid `example`) the moment it exists.
TEST(SimSpecTest, EveryOverrideKeyRoundTripsThroughSpecStrings) {
  for (const OverrideKey& key : KnownOverrides()) {
    ASSERT_FALSE(key.example.empty())
        << "override '" << key.key << "' needs an example value in OverrideTable()";
    SimSpec spec;
    spec.SetOverride(key.key, key.example);  // example must validate
    const SimSpec reparsed = SimSpec::Parse(spec.ToString());
    EXPECT_EQ(reparsed, spec) << "round trip broke for override '" << key.key
                              << "' via '" << spec.ToString() << "'";
    EXPECT_EQ(reparsed.overrides.at(key.key), key.example);
  }
}

TEST(SimSpecTest, PathValuesEscapeSlashesInsideSpecStrings) {
  SimSpec spec;
  spec.SetOverride("swf", "/data/theta%2.swf");  // '/' and literal '%'
  const std::string text = spec.ToString();
  // Inside the one-string form, '/' is %2F and '%' is %25 — the segment
  // separator never collides with path characters.
  EXPECT_NE(text.find("swf=%2Fdata%2Ftheta%252.swf"), std::string::npos) << text;
  const SimSpec reparsed = SimSpec::Parse(text);
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.overrides.at("swf"), "/data/theta%2.swf");
  // Lower-case escapes and unknown escape sequences decode predictably.
  EXPECT_EQ(SimSpec::Parse("baseline/FCFS/W5/preset=swf/swf=%2fx").overrides.at("swf"),
            "/x");
}

TEST(SimSpecTest, UnknownOverrideKeysAreRejectedEverywhere) {
  // Parse path (shard files), SetOverride path (API), both throw naming
  // the key and listing the known ones.
  try {
    SimSpec::Parse("baseline/FCFS/W5/bogus_knob=3");
    FAIL() << "unknown key must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus_knob"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos)
        << "error should list known keys: " << e.what();
  }
  SimSpec spec;
  EXPECT_THROW(spec.SetOverride("bogus_knob", "3"), std::invalid_argument);
}

}  // namespace
}  // namespace hs
