#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(300, EventKind::kJobSubmit, 3);
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(200, EventKind::kJobSubmit, 2);
  EXPECT_EQ(q.Pop().job, 1);
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_EQ(q.Pop().job, 3);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, KindBreaksTimeTies) {
  EventQueue q;
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(100, EventKind::kJobFinish, 2);
  q.Push(100, EventKind::kAdvanceNotice, 3);
  // Finish (0) before notice (4) before submit (5).
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_EQ(q.Pop().job, 3);
  EXPECT_EQ(q.Pop().job, 1);
}

TEST(EventQueueTest, InsertionOrderBreaksFullTies) {
  EventQueue q;
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(100, EventKind::kJobSubmit, 2);
  EXPECT_EQ(q.Pop().job, 1);
  EXPECT_EQ(q.Pop().job, 2);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(200, EventKind::kJobFinish, 2);
  q.Cancel(id);
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelAfterPopIsHarmless) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(200, EventKind::kJobFinish, 2);
  q.Pop();
  q.Cancel(id);  // already fired
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_EQ(q.Pop().job, 2);
}

TEST(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Cancel(id);
  q.Cancel(id);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelNoEventIsNoop) {
  EventQueue q;
  q.Cancel(kNoEvent);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PeekTimeReflectsLiveEvents) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(250, EventKind::kJobFinish, 2);
  EXPECT_EQ(q.PeekTime(), 100);
  q.Cancel(id);
  EXPECT_EQ(q.PeekTime(), 250);
}

TEST(EventQueueTest, PeekTimeOfEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.PeekTime(), kNever);
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.Pop(), std::runtime_error);
}

TEST(EventQueueTest, AuxPayloadCarried) {
  EventQueue q;
  q.Push(10, EventKind::kWarningExpire, 5, 77);
  const Event e = q.Pop();
  EXPECT_EQ(e.job, 5);
  EXPECT_EQ(e.aux, 77);
}

TEST(EventQueueTest, ManyEventsSortedProperty) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    q.Push((i * 7919) % 503, EventKind::kJobSubmit, i);
  }
  SimTime prev = -1;
  while (!q.Empty()) {
    const Event e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace hs
