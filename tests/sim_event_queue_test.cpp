#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace hs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(300, EventKind::kJobSubmit, 3);
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(200, EventKind::kJobSubmit, 2);
  EXPECT_EQ(q.Pop().job, 1);
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_EQ(q.Pop().job, 3);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, KindBreaksTimeTies) {
  EventQueue q;
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(100, EventKind::kJobFinish, 2);
  q.Push(100, EventKind::kAdvanceNotice, 3);
  // Finish (0) before notice (4) before submit (5).
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_EQ(q.Pop().job, 3);
  EXPECT_EQ(q.Pop().job, 1);
}

TEST(EventQueueTest, InsertionOrderBreaksFullTies) {
  EventQueue q;
  q.Push(100, EventKind::kJobSubmit, 1);
  q.Push(100, EventKind::kJobSubmit, 2);
  EXPECT_EQ(q.Pop().job, 1);
  EXPECT_EQ(q.Pop().job, 2);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(200, EventKind::kJobFinish, 2);
  q.Cancel(id);
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_EQ(q.Pop().job, 2);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelAfterPopIsHarmless) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(200, EventKind::kJobFinish, 2);
  q.Pop();
  q.Cancel(id);  // already fired
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_EQ(q.Pop().job, 2);
}

TEST(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Cancel(id);
  q.Cancel(id);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, CancelNoEventIsNoop) {
  EventQueue q;
  q.Cancel(kNoEvent);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PeekTimeReflectsLiveEvents) {
  EventQueue q;
  const EventId id = q.Push(100, EventKind::kJobFinish, 1);
  q.Push(250, EventKind::kJobFinish, 2);
  EXPECT_EQ(q.PeekTime(), 100);
  q.Cancel(id);
  EXPECT_EQ(q.PeekTime(), 250);
}

TEST(EventQueueTest, PeekTimeOfEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.PeekTime(), kNever);
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.Pop(), std::runtime_error);
}

TEST(EventQueueTest, AuxPayloadCarried) {
  EventQueue q;
  q.Push(10, EventKind::kWarningExpire, 5, 77);
  const Event e = q.Pop();
  EXPECT_EQ(e.job, 5);
  EXPECT_EQ(e.aux, 77);
}

TEST(EventQueueTest, ManyEventsSortedProperty) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    q.Push((i * 7919) % 503, EventKind::kJobSubmit, i);
  }
  SimTime prev = -1;
  while (!q.Empty()) {
    const Event e = q.Pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueTest, StaleHandleAfterSlotReuseIsNoop) {
  EventQueue q;
  const EventId first = q.Push(100, EventKind::kJobFinish, 1);
  q.Cancel(first);
  ASSERT_TRUE(q.Empty());  // physically drains the tombstone, recycling its slot
  // The new event reuses the slot with a bumped generation; the stale
  // handle must not cancel it.
  const EventId second = q.Push(200, EventKind::kJobFinish, 2);
  EXPECT_NE(first, second);
  q.Cancel(first);
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_EQ(q.Pop().job, 2);
}

TEST(EventQueueTest, CrossQueueCancelAssertsInDebug) {
  EventQueue a;
  EventQueue b;
  const EventId id = a.Push(100, EventKind::kJobFinish, 1);
  // Debug builds assert on another queue's handle; release builds ignore it.
  EXPECT_DEBUG_DEATH(b.Cancel(id), "handle from another queue");
  EXPECT_EQ(a.live_size(), 1u);
}

TEST(EventQueueStressTest, CancelChurnKeepsHeapCompact) {
  // Malleable-resize shape: every round cancels a finish/kill pair and
  // reschedules it. Compaction must keep the physical heap bounded by ~2x
  // the live count instead of accumulating one tombstone per cancel.
  EventQueue q;
  Rng rng(0xABCDULL);
  constexpr int kJobs = 500;
  std::vector<EventId> finish(kJobs, kNoEvent), kill(kJobs, kNoEvent);
  for (int j = 0; j < kJobs; ++j) {
    finish[static_cast<std::size_t>(j)] =
        q.Push(rng.UniformInt(1, 1 << 20), EventKind::kJobFinish, j);
    kill[static_cast<std::size_t>(j)] =
        q.Push(rng.UniformInt(1, 1 << 20), EventKind::kJobKill, j);
  }
  for (int round = 0; round < 20000; ++round) {
    const int j = static_cast<int>(rng.UniformInt(0, kJobs - 1));
    const auto sj = static_cast<std::size_t>(j);
    q.Cancel(finish[sj]);
    q.Cancel(kill[sj]);
    finish[sj] = q.Push(rng.UniformInt(1, 1 << 20), EventKind::kJobFinish, j);
    kill[sj] = q.Push(rng.UniformInt(1, 1 << 20), EventKind::kJobKill, j);
    ASSERT_EQ(q.live_size(), 2u * kJobs);
    // Lazy-deletion bound: dead entries never exceed half the heap (plus
    // the small-heap threshold slack).
    ASSERT_LE(q.heap_size(), 2u * q.live_size() + 64u) << "round " << round;
  }
  // Drain; times must come out sorted and exactly live_size() events remain.
  std::size_t popped = 0;
  SimTime prev = -1;
  while (!q.Empty()) {
    const Event e = q.Pop();
    ASSERT_GE(e.time, prev);
    prev = e.time;
    ++popped;
  }
  EXPECT_EQ(popped, 2u * kJobs);
}

TEST(EventQueueStressTest, RandomCancelPopAgainstReferenceModel) {
  // Differential test: the queue must agree with a naive reference model
  // (vector of live events, min scan by (time, kind, seq)) under random
  // push/cancel/pop interleavings.
  EventQueue q;
  Rng rng(0x9E3779ULL);
  struct Ref {
    SimTime time;
    EventKind kind;
    JobId job;
    EventId id;
    std::uint64_t order;  // insertion order
  };
  std::vector<Ref> model;
  std::uint64_t order = 0;
  JobId next_job = 0;
  for (int step = 0; step < 30000; ++step) {
    const int action = static_cast<int>(rng.UniformInt(0, 5));
    if (action <= 2) {  // push
      const SimTime t = rng.UniformInt(0, 5000);
      const auto kind = static_cast<EventKind>(rng.UniformInt(0, 8));
      const EventId id = q.Push(t, kind, next_job);
      model.push_back({t, kind, next_job, id, order++});
      ++next_job;
    } else if (action == 3 && !model.empty()) {  // cancel a random live event
      const auto at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(model.size()) - 1));
      q.Cancel(model[at].id);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(at));
    } else if (!model.empty()) {  // pop and compare against the model's min
      const auto min_it = std::min_element(
          model.begin(), model.end(), [](const Ref& a, const Ref& b) {
            if (a.time != b.time) return a.time < b.time;
            if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            return a.order < b.order;
          });
      const Event e = q.Pop();
      ASSERT_EQ(e.job, min_it->job) << "step " << step;
      ASSERT_EQ(e.time, min_it->time);
      model.erase(min_it);
    }
    ASSERT_EQ(q.live_size(), model.size());
  }
}

}  // namespace
}  // namespace hs
