// Loopback socket primitive tests: ephemeral binding, line framing across
// split writes, CRLF tolerance, EOF semantics, bounded line reads, and
// partial-write resilience under a slow-draining peer.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/socket.h"

namespace hs {
namespace {

TEST(SocketTest, EphemeralListenerReportsItsPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
  // A second ephemeral listener gets its own port.
  TcpListener other(0);
  EXPECT_NE(other.port(), listener.port());
}

TEST(SocketTest, LineRoundTripOverLoopback) {
  TcpListener listener(0);
  std::thread echo([&listener] {
    Socket peer = listener.Accept();
    for (;;) {
      const std::optional<std::string> line = peer.RecvLine();
      if (!line.has_value()) break;
      SendLine(peer, "echo:" + *line);
    }
  });

  Socket client = ConnectLoopback(listener.port());
  SendLine(client, "hello world");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:hello world"));

  // Several lines in one send still come back one at a time.
  client.SendAll("a\nb\nc\n");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:a"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:b"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:c"));

  // A line split across writes arrives whole; '\r\n' is stripped to the line.
  client.SendAll("split");
  client.SendAll(" line\r\n");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:split line"));

  client.Close();
  echo.join();
}

TEST(SocketTest, CleanEofIsNulloptPartialLineIsReturned) {
  TcpListener listener(0);
  std::thread writer([&listener] {
    Socket peer = listener.Accept();
    peer.SendAll("complete\npartial");  // no trailing newline, then close
  });

  Socket client = ConnectLoopback(listener.port());
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("complete"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("partial"));
  EXPECT_EQ(client.RecvLine(), std::nullopt);
  writer.join();
}

TEST(SocketTest, ConnectToClosedPortThrows) {
  // Bind-then-drop guarantees the port is currently closed.
  std::uint16_t dead_port = 0;
  { dead_port = TcpListener(0).port(); }
  EXPECT_THROW(ConnectLoopback(dead_port), std::runtime_error);
}

TEST(SocketTest, RecvLineWithTimeoutTimesOutThenDelivers) {
  TcpListener listener(0);
  Socket client = ConnectLoopback(listener.port());
  Socket peer = listener.Accept();

  // A silent peer: the zero-timeout poll and a short bounded wait both
  // report kTimeout without consuming anything.
  std::string line;
  EXPECT_EQ(client.RecvLineWithTimeout(0.0, &line), RecvLineStatus::kTimeout);
  EXPECT_EQ(client.RecvLineWithTimeout(0.05, &line), RecvLineStatus::kTimeout);

  // Bytes without a newline stay buffered across kTimeout returns; the
  // line is delivered whole once the terminator arrives.
  peer.SendAll("hal");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(client.RecvLineWithTimeout(0.05, &line), RecvLineStatus::kTimeout);
  peer.SendAll("f and rest\r\n");
  EXPECT_EQ(client.RecvLineWithTimeout(5.0, &line), RecvLineStatus::kLine);
  EXPECT_EQ(line, "half and rest");
}

TEST(SocketTest, RecvLineWithTimeoutEofSemanticsMatchRecvLine) {
  TcpListener listener(0);
  Socket client = ConnectLoopback(listener.port());
  {
    Socket peer = listener.Accept();
    peer.SendAll("complete\npartial");  // no trailing newline, then close
  }
  std::string line;
  EXPECT_EQ(client.RecvLineWithTimeout(5.0, &line), RecvLineStatus::kLine);
  EXPECT_EQ(line, "complete");
  // The unterminated final fragment still counts as a line at EOF...
  EXPECT_EQ(client.RecvLineWithTimeout(5.0, &line), RecvLineStatus::kLine);
  EXPECT_EQ(line, "partial");
  // ...and only a clean EOF with nothing buffered is kEof.
  EXPECT_EQ(client.RecvLineWithTimeout(5.0, &line), RecvLineStatus::kEof);
}

TEST(SocketTest, SendAllSurvivesPartialWritesToSlowReader) {
  // A payload far beyond the kernel socket buffers forces send(2) to
  // return short writes; SendAll must keep going until every byte is out,
  // and the slow-draining reader must see the exact bytes.
  const std::size_t kBytes = 4 * 1024 * 1024;
  std::string payload(kBytes, 'x');
  for (std::size_t i = 0; i < payload.size(); i += 4096) payload[i] = 'y';
  payload.back() = '\n';

  TcpListener listener(0);
  std::string received;
  std::thread reader([&listener, &received, kBytes] {
    Socket peer = listener.Accept();
    std::string line;
    while (received.size() < kBytes) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));  // drain slowly
      const RecvLineStatus status = peer.RecvLineWithTimeout(10.0, &line);
      if (status != RecvLineStatus::kLine) break;
      received += line;
      received += '\n';
    }
  });
  Socket client = ConnectLoopback(listener.port());
  client.SendAll(payload);
  client.Close();
  reader.join();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

TEST(SocketTest, SendAllToHungUpPeerThrowsInsteadOfSigpipe) {
  TcpListener listener(0);
  Socket client = ConnectLoopback(listener.port());
  { (void)listener.Accept(); }  // accept, then immediately close
  // The first sends may land in the kernel buffer; keep writing until the
  // RST surfaces. A SIGPIPE would kill the process before the throw.
  EXPECT_THROW(
      {
        for (int i = 0; i < 10000; ++i) client.SendAll(std::string(4096, 'z'));
      },
      std::runtime_error);
}

TEST(SocketTest, MovedFromSocketIsInvalid) {
  TcpListener listener(0);
  std::thread accepter([&listener] { (void)listener.Accept(); });
  Socket a = ConnectLoopback(listener.port());
  EXPECT_TRUE(a.valid());
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  accepter.join();
}

}  // namespace
}  // namespace hs
