// Loopback socket primitive tests: ephemeral binding, line framing across
// split writes, CRLF tolerance, and EOF semantics.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/socket.h"

namespace hs {
namespace {

TEST(SocketTest, EphemeralListenerReportsItsPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
  // A second ephemeral listener gets its own port.
  TcpListener other(0);
  EXPECT_NE(other.port(), listener.port());
}

TEST(SocketTest, LineRoundTripOverLoopback) {
  TcpListener listener(0);
  std::thread echo([&listener] {
    Socket peer = listener.Accept();
    for (;;) {
      const std::optional<std::string> line = peer.RecvLine();
      if (!line.has_value()) break;
      SendLine(peer, "echo:" + *line);
    }
  });

  Socket client = ConnectLoopback(listener.port());
  SendLine(client, "hello world");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:hello world"));

  // Several lines in one send still come back one at a time.
  client.SendAll("a\nb\nc\n");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:a"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:b"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:c"));

  // A line split across writes arrives whole; '\r\n' is stripped to the line.
  client.SendAll("split");
  client.SendAll(" line\r\n");
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("echo:split line"));

  client.Close();
  echo.join();
}

TEST(SocketTest, CleanEofIsNulloptPartialLineIsReturned) {
  TcpListener listener(0);
  std::thread writer([&listener] {
    Socket peer = listener.Accept();
    peer.SendAll("complete\npartial");  // no trailing newline, then close
  });

  Socket client = ConnectLoopback(listener.port());
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("complete"));
  EXPECT_EQ(client.RecvLine(), std::optional<std::string>("partial"));
  EXPECT_EQ(client.RecvLine(), std::nullopt);
  writer.join();
}

TEST(SocketTest, ConnectToClosedPortThrows) {
  // Bind-then-drop guarantees the port is currently closed.
  std::uint16_t dead_port = 0;
  { dead_port = TcpListener(0).port(); }
  EXPECT_THROW(ConnectLoopback(dead_port), std::runtime_error);
}

TEST(SocketTest, MovedFromSocketIsInvalid) {
  TcpListener listener(0);
  std::thread accepter([&listener] { (void)listener.Accept(); });
  Socket a = ConnectLoopback(listener.port());
  EXPECT_TRUE(a.valid());
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  accepter.join();
}

}  // namespace
}  // namespace hs
