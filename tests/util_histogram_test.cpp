#include "util/histogram.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

RangeHistogram MakeSizeHist() { return RangeHistogram({128, 256, 512, 1024}); }

TEST(HistogramTest, BinBoundsPartitionRange) {
  const auto hist = MakeSizeHist();
  ASSERT_EQ(hist.bins().size(), 3u);
  EXPECT_EQ(hist.bins()[0].lo, 128);
  EXPECT_EQ(hist.bins()[0].hi, 255);
  EXPECT_EQ(hist.bins()[1].lo, 256);
  EXPECT_EQ(hist.bins()[1].hi, 511);
  EXPECT_EQ(hist.bins()[2].lo, 512);
  EXPECT_EQ(hist.bins()[2].hi, 1024);  // last bin inclusive of final edge
}

TEST(HistogramTest, AddCountsAndWeights) {
  auto hist = MakeSizeHist();
  hist.Add(128, 2.0);
  hist.Add(255, 1.0);
  hist.Add(256, 4.0);
  hist.Add(1024, 8.0);
  EXPECT_EQ(hist.bins()[0].count, 2u);
  EXPECT_EQ(hist.bins()[1].count, 1u);
  EXPECT_EQ(hist.bins()[2].count, 1u);
  EXPECT_DOUBLE_EQ(hist.bins()[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(hist.total_weight(), 15.0);
  EXPECT_EQ(hist.total_count(), 4u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  auto hist = MakeSizeHist();
  hist.Add(1);      // below first edge
  hist.Add(99999);  // above last edge
  EXPECT_EQ(hist.bins()[0].count, 1u);
  EXPECT_EQ(hist.bins()[2].count, 1u);
}

TEST(HistogramTest, Shares) {
  auto hist = MakeSizeHist();
  hist.Add(128, 1.0);
  hist.Add(600, 3.0);
  EXPECT_DOUBLE_EQ(hist.CountShare(0), 0.5);
  EXPECT_DOUBLE_EQ(hist.WeightShare(2), 0.75);
}

TEST(HistogramTest, SharesOfEmptyHistogramAreZero) {
  const auto hist = MakeSizeHist();
  EXPECT_DOUBLE_EQ(hist.CountShare(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.WeightShare(0), 0.0);
}

TEST(HistogramTest, RejectsBadEdges) {
  EXPECT_THROW(RangeHistogram({128}), std::invalid_argument);
  EXPECT_THROW(RangeHistogram({128, 128}), std::invalid_argument);
  EXPECT_THROW(RangeHistogram({256, 128}), std::invalid_argument);
}

}  // namespace
}  // namespace hs
