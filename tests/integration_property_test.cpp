// Property-based integration tests: system invariants that must hold for
// every mechanism on randomized workloads.
#include <gtest/gtest.h>

#include "hybrid_harness.h"
#include "exp/scenario.h"

namespace hs {
namespace {

using test::HybridHarness;

ScenarioConfig PropertyScenario() {
  ScenarioConfig config = MakePaperScenario(/*weeks=*/1, "W5");
  config.theta.num_nodes = 512;
  config.theta.projects.max_job_size = 512;
  config.theta.projects.num_projects = 24;
  config.theta.target_load = 0.85;
  return config;
}

struct PropertyCase {
  std::size_t mechanism_index;  // 0..5 paper mechanisms, 6 = baseline
  std::uint64_t seed;
};

class MechanismProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MechanismProperties, InvariantsHold) {
  const auto [mech_idx, seed] = GetParam();
  const Mechanism mechanism =
      mech_idx < 6 ? PaperMechanisms()[mech_idx] : BaselineMechanism();
  const Trace trace = BuildScenarioTrace(PropertyScenario(), seed);
  ASSERT_EQ(trace.Validate(), "");

  HybridHarness h(Trace(trace), MakePaperConfig(mechanism));
  h.Run();

  // 1. The simulation drains: no events, no running jobs, no waiting jobs.
  EXPECT_TRUE(h.sim_.exhausted());
  EXPECT_EQ(h.sched_.engine().running_count(), 0u);
  EXPECT_EQ(h.sched_.engine().queue().size(), 0u);

  // 2. The cluster returns to a fully free state with intact invariants.
  EXPECT_EQ(h.sched_.engine().cluster().free_count(), trace.num_nodes);
  EXPECT_EQ(h.sched_.engine().cluster().busy_count(), 0);
  EXPECT_EQ(h.sched_.engine().cluster().reserved_idle_count(), 0);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");

  // 3. Every job completes exactly once; none is killed at its estimate.
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, trace.jobs.size());
  EXPECT_EQ(r.jobs_killed, 0u);

  // 4. No outstanding leases or reservations.
  EXPECT_EQ(h.sched_.ledger().TotalOutstanding(), 0u);
  EXPECT_TRUE(h.sched_.reservations().Snapshot().empty());

  // 5. Conservation: allocated node-seconds equal useful work + setup +
  //    checkpoints + lost computation (within integer-rounding slack of the
  //    malleable progress model).
  const double allocated = h.sched_.engine().cluster().busy_node_seconds();
  double useful = 0.0;
  for (const auto& job : trace.jobs) useful += static_cast<double>(job.total_work());
  const double overheads = (r.setup_node_hours + r.checkpoint_node_hours +
                            r.lost_node_hours) * kHour;
  const double slack = 2.0 * static_cast<double>(trace.num_nodes) *
                       static_cast<double>(trace.jobs.size());
  EXPECT_NEAR(allocated, useful + overheads, slack)
      << ToString(mechanism) << " seed=" << seed;

  // 6. Rates and ratios are proper fractions.
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_LE(r.allocated_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.od_instant_rate, r.od_instant_rate_strict);
  EXPECT_LE(r.od_instant_rate, 1.0 + 1e-9);
  EXPECT_LE(r.rigid_preempt_ratio, 1.0);
  EXPECT_LE(r.malleable_preempt_ratio, 1.0);
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (std::size_t m = 0; m <= 6; ++m) {
    for (const std::uint64_t seed : {1ULL, 2ULL}) {
      cases.push_back({m, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MechanismProperties, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      const Mechanism mechanism = info.param.mechanism_index < 6
                                      ? PaperMechanisms()[info.param.mechanism_index]
                                      : BaselineMechanism();
      std::string name = ToString(mechanism);
      for (char& c : name) {
        if (c == '&' || c == '/') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace hs
