#include "checkpoint/daly.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hs {
namespace {

TEST(DalyTest, FirstOrderFormula) {
  EXPECT_DOUBLE_EQ(DalyFirstOrder(600.0, 1.0e6), std::sqrt(2.0 * 600.0 * 1.0e6));
}

TEST(DalyTest, HigherOrderCloseToFirstOrderForSmallDelta) {
  // delta << MTBF: the higher-order correction is small relative to tau.
  const double first = DalyFirstOrder(10.0, 1.0e7);
  const double higher = DalyHigherOrder(10.0, 1.0e7);
  EXPECT_NEAR(higher / first, 1.0, 0.01);
}

TEST(DalyTest, HigherOrderBelowFirstOrderForLargeDelta) {
  // The -delta term dominates when delta is material.
  EXPECT_LT(DalyHigherOrder(600.0, 10000.0), DalyFirstOrder(600.0, 10000.0));
}

TEST(DalyTest, DegenerateRegimeReturnsMtbf) {
  EXPECT_DOUBLE_EQ(DalyHigherOrder(600.0, 200.0), 200.0);  // delta >= 2*MTBF
}

TEST(DalyTest, OptimalIntervalGrowsWithMtbf) {
  EXPECT_LT(DalyOptimalInterval(600, 10 * kHour), DalyOptimalInterval(600, 1000 * kHour));
}

TEST(DalyTest, OptimalIntervalGrowsWithOverhead) {
  EXPECT_LT(DalyOptimalInterval(600, 100 * kHour), DalyOptimalInterval(1200, 100 * kHour));
}

TEST(DalyTest, OptimalIntervalNeverBelowDumpCost) {
  EXPECT_GE(DalyOptimalInterval(600, 700), 600);
}

TEST(DalyTest, PaperScaleSanity) {
  // A 128-node job with a 5-year node MTBF: job MTBF ~ 14.2 days; with a
  // 600 s dump the optimum lands in the several-hours range.
  const SimTime mtbf = (5LL * 365 * kDay) / 128;
  const SimTime tau = DalyOptimalInterval(600, mtbf);
  EXPECT_GT(tau, 2 * kHour);
  EXPECT_LT(tau, 24 * kHour);
}

}  // namespace
}  // namespace hs
