// Experiment-harness tests: scenario determinism, grid shapes, result
// aggregation, and the metric plumbing used by the benches.
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/paper_tables.h"

namespace hs {
namespace {

ScenarioConfig TinyScenario() {
  ScenarioConfig config = MakePaperScenario(1, "W5");
  config.theta.num_nodes = 512;
  config.theta.projects.max_job_size = 512;
  config.theta.projects.num_projects = 20;
  return config;
}

TEST(ScenarioTest, DeterministicInSeed) {
  const Trace a = BuildScenarioTrace(TinyScenario(), 5);
  const Trace b = BuildScenarioTrace(TinyScenario(), 5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].klass, b.jobs[i].klass);
    EXPECT_EQ(a.jobs[i].notice, b.jobs[i].notice);
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
  }
}

TEST(ScenarioTest, NoticeMixApplied) {
  ScenarioConfig config = TinyScenario();
  config.notice_mix = "W1";
  const Trace trace = BuildScenarioTrace(config, 6);
  std::size_t none = 0, total = 0;
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    ++total;
    none += job.notice == NoticeClass::kNone;
  }
  if (total >= 20) {
    EXPECT_GT(static_cast<double>(none) / total, 0.4);  // W1: 70% no-notice
  }
}

TEST(ScenarioTest, NameEncodesMix) {
  const Trace trace = BuildScenarioTrace(TinyScenario(), 7);
  EXPECT_NE(trace.name.find("W5"), std::string::npos);
}

TEST(ExperimentTest, BuildTracesUsesDistinctSeeds) {
  ThreadPool pool(2);
  const auto traces = BuildTraces(TinyScenario(), 3, 100, pool);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_NE(traces[0].jobs.size(), traces[1].jobs.size());
}

TEST(ExperimentTest, RunGridShape) {
  ThreadPool pool(4);
  const auto traces = BuildTraces(TinyScenario(), 2, 200, pool);
  const std::vector<HybridConfig> configs = {
      MakePaperConfig(BaselineMechanism()),
      MakePaperConfig(PaperMechanisms()[1]),
      MakePaperConfig(PaperMechanisms()[3]),
  };
  const auto grid = RunGrid(traces, configs, pool);
  ASSERT_EQ(grid.size(), 3u);
  for (const auto& row : grid) {
    ASSERT_EQ(row.size(), 2u);
    for (const auto& r : row) EXPECT_GT(r.jobs_completed, 0u);
  }
}

TEST(ExperimentTest, MeanResultAveragesAndAccumulates) {
  SimResult a, b;
  a.avg_turnaround_h = 10.0;
  b.avg_turnaround_h = 20.0;
  a.utilization = 0.8;
  b.utilization = 0.9;
  a.jobs_completed = 100;
  b.jobs_completed = 50;
  a.decision_max_us = 5.0;
  b.decision_max_us = 9.0;
  const SimResult mean = MeanResult({a, b});
  EXPECT_DOUBLE_EQ(mean.avg_turnaround_h, 15.0);
  EXPECT_NEAR(mean.utilization, 0.85, 1e-12);
  EXPECT_EQ(mean.jobs_completed, 150u);   // counters accumulate
  EXPECT_DOUBLE_EQ(mean.decision_max_us, 9.0);  // max of maxima
}

TEST(ExperimentTest, MeanResultOfEmptyIsZero) {
  const SimResult mean = MeanResult({});
  EXPECT_DOUBLE_EQ(mean.avg_turnaround_h, 0.0);
  EXPECT_EQ(mean.jobs_completed, 0u);
}

TEST(PaperTablesTest, MetricExtraction) {
  SimResult r;
  r.avg_turnaround_h = 12.5;
  r.utilization = 0.84;
  r.od_instant_rate = 0.98;
  r.rigid_preempt_ratio = 0.03;
  r.malleable_preempt_ratio = 0.15;
  r.rigid_turnaround_h = 14.0;
  r.malleable_turnaround_h = 11.0;
  r.od_turnaround_h = 2.0;
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kAvgTurnaroundH), 12.5);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kUtilization), 0.84);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kOdInstantRate), 0.98);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kRigidPreemptRatio), 0.03);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kMalleablePreemptRatio), 0.15);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kRigidTurnaroundH), 14.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kMalleableTurnaroundH), 11.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kOdTurnaroundH), 2.0);
}

TEST(PaperTablesTest, MetricMetadata) {
  for (const MetricKind kind : Fig6Metrics()) {
    EXPECT_STRNE(MetricName(kind), "?");
  }
  EXPECT_TRUE(MetricIsPercent(MetricKind::kUtilization));
  EXPECT_FALSE(MetricIsPercent(MetricKind::kAvgTurnaroundH));
  EXPECT_EQ(Fig6Metrics().size(), 7u);
}

}  // namespace
}  // namespace hs
