// Experiment-harness tests: scenario determinism, grid shapes, result
// aggregation, and the metric plumbing used by the benches.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "exp/paper_tables.h"
#include "util/file_util.h"

namespace hs {
namespace {

ScenarioConfig TinyScenario() {
  ScenarioConfig config = MakePaperScenario(1, "W5");
  config.theta.num_nodes = 512;
  config.theta.projects.max_job_size = 512;
  config.theta.projects.num_projects = 20;
  return config;
}

TEST(ScenarioTest, DeterministicInSeed) {
  const Trace a = BuildScenarioTrace(TinyScenario(), 5);
  const Trace b = BuildScenarioTrace(TinyScenario(), 5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].klass, b.jobs[i].klass);
    EXPECT_EQ(a.jobs[i].notice, b.jobs[i].notice);
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
  }
}

TEST(ScenarioTest, NoticeMixApplied) {
  ScenarioConfig config = TinyScenario();
  config.notice_mix = "W1";
  const Trace trace = BuildScenarioTrace(config, 6);
  std::size_t none = 0, total = 0;
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    ++total;
    none += job.notice == NoticeClass::kNone;
  }
  if (total >= 20) {
    EXPECT_GT(static_cast<double>(none) / total, 0.4);  // W1: 70% no-notice
  }
}

TEST(ScenarioTest, NameEncodesMix) {
  const Trace trace = BuildScenarioTrace(TinyScenario(), 7);
  EXPECT_NE(trace.name.find("W5"), std::string::npos);
}

TEST(ExperimentTest, SeedSweepUsesDistinctSeeds) {
  SimSpec base = SimSpec::Parse("baseline/FCFS/W5/preset=tiny");
  const auto specs = SeedSweep(base, 3, 100);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].seed, 100u);
  EXPECT_EQ(specs[2].seed, 102u);
  // Distinct seeds produce distinct traces.
  EXPECT_NE(specs[0].BuildTrace().jobs.size(), specs[1].BuildTrace().jobs.size());
}

TEST(ExperimentTest, RunnerReturnsRowsInSpecOrder) {
  ThreadPool pool(4);
  ExperimentRunner runner(pool);
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&SPAA", "CUA&SPAA"}) {
    SimSpec spec = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5/preset=tiny");
    for (SimSpec& seeded : SeedSweep(spec, 2, 200)) specs.push_back(seeded);
  }
  const auto rows = runner.Run(specs);
  ASSERT_EQ(rows.size(), 6u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].spec, specs[i]);
    EXPECT_GT(rows[i].result.jobs_completed, 0u);
    EXPECT_FALSE(rows[i].trace_name.empty());
  }
  // Config-major layout reduces with GroupMeans.
  const auto means = GroupMeans(rows, 2);
  ASSERT_EQ(means.size(), 3u);
  for (const SimResult& mean : means) EXPECT_GT(mean.jobs_completed, 0u);
}

TEST(ExperimentTest, RunnerSharesTracesAndStreamsRows) {
  ThreadPool pool(2);
  ExperimentRunner runner(pool);
  // Two mechanisms on the same (preset, mix, weeks, seed) cell: one trace.
  std::vector<SimSpec> specs = {SimSpec::Parse("baseline/FCFS/W5/preset=tiny/seed=7"),
                                SimSpec::Parse("CUA&SPAA/FCFS/W5/preset=tiny/seed=7")};
  EXPECT_EQ(specs[0].ScenarioKey(), specs[1].ScenarioKey());

  class CountingSink final : public ResultSink {
   public:
    void OnResult(std::size_t spec_index, const SpecResult& row) override {
      ++rows;
      last_index = spec_index;
      last_trace = row.trace_name;
    }
    int rows = 0;
    std::size_t last_index = 0;
    std::string last_trace;
  } sink;
  const auto rows = runner.Run(specs, &sink);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(sink.rows, 2);
  EXPECT_EQ(rows[0].trace_name, rows[1].trace_name);
  // Same trace, same baseline-vs-mechanism contract as the old grid.
  EXPECT_GT(rows[0].result.jobs_completed, 0u);
}

TEST(ExperimentTest, MidGridFailureFlushesPriorRowsAndNamesSpec) {
  // A spec that is valid in isolation but fails against its trace: the SWF
  // replay has no MaxNodes header, so the machine is sized to the largest
  // job (4 nodes), and the 100-node static partition then throws when the
  // scheduler comes up — only after up-front validation passed. The
  // contract: every healthy cell still runs and streams to the sink, and
  // the error names the failing spec string.
  const std::string dir = MakeTempDir("hs-exp-test-");
  const std::string swf_path = dir + "/headerless.swf";
  WriteTextFile(swf_path, "1 0 0 100 4 0 0 4 100\n");
  SimSpec bad = SimSpec::Parse("baseline/FCFS/W5/preset=swf/partition=100");
  bad.SetOverride("swf", swf_path);
  ASSERT_TRUE(bad.Validate().empty()) << bad.Validate();

  std::vector<SimSpec> specs = {SimSpec::Parse("baseline/FCFS/W5/preset=tiny/seed=5"),
                                bad,
                                SimSpec::Parse("N&SPAA/FCFS/W5/preset=tiny/seed=5")};
  class CountingSink final : public ResultSink {
   public:
    void OnResult(std::size_t, const SpecResult& row) override {
      ++rows;
      EXPECT_GT(row.result.jobs_completed, 0u);
    }
    int rows = 0;
  } sink;

  ThreadPool pool(2);
  ExperimentRunner runner(pool);
  try {
    runner.Run(specs, &sink);
    FAIL() << "the swf cell must fail mid-grid";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(bad.ToString()), std::string::npos)
        << "error must name the failing spec: " << e.what();
  }
  EXPECT_EQ(sink.rows, 2) << "healthy cells must still reach the sink";
  RemoveTreeBestEffort(dir);
}

TEST(ExperimentTest, RunnerRejectsInvalidSpecs) {
  ThreadPool pool(1);
  ExperimentRunner runner(pool);
  SimSpec bad;
  bad.mechanism = "NOPE&PAA";
  EXPECT_THROW(runner.Run({bad}), std::invalid_argument);
}

TEST(ExperimentTest, MeanResultAveragesAndAccumulates) {
  SimResult a, b;
  a.avg_turnaround_h = 10.0;
  b.avg_turnaround_h = 20.0;
  a.utilization = 0.8;
  b.utilization = 0.9;
  a.jobs_completed = 100;
  b.jobs_completed = 50;
  a.decision_max_us = 5.0;
  b.decision_max_us = 9.0;
  const SimResult mean = MeanResult({a, b});
  EXPECT_DOUBLE_EQ(mean.avg_turnaround_h, 15.0);
  EXPECT_NEAR(mean.utilization, 0.85, 1e-12);
  EXPECT_EQ(mean.jobs_completed, 150u);   // counters accumulate
  EXPECT_DOUBLE_EQ(mean.decision_max_us, 9.0);  // max of maxima
}

TEST(ExperimentTest, MeanResultOfEmptyIsZero) {
  const SimResult mean = MeanResult({});
  EXPECT_DOUBLE_EQ(mean.avg_turnaround_h, 0.0);
  EXPECT_EQ(mean.jobs_completed, 0u);
}

TEST(PaperTablesTest, MetricExtraction) {
  SimResult r;
  r.avg_turnaround_h = 12.5;
  r.utilization = 0.84;
  r.od_instant_rate = 0.98;
  r.rigid_preempt_ratio = 0.03;
  r.malleable_preempt_ratio = 0.15;
  r.rigid_turnaround_h = 14.0;
  r.malleable_turnaround_h = 11.0;
  r.od_turnaround_h = 2.0;
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kAvgTurnaroundH), 12.5);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kUtilization), 0.84);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kOdInstantRate), 0.98);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kRigidPreemptRatio), 0.03);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kMalleablePreemptRatio), 0.15);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kRigidTurnaroundH), 14.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kMalleableTurnaroundH), 11.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(r, MetricKind::kOdTurnaroundH), 2.0);
}

TEST(PaperTablesTest, MetricMetadata) {
  for (const MetricKind kind : Fig6Metrics()) {
    EXPECT_STRNE(MetricName(kind), "?");
  }
  EXPECT_TRUE(MetricIsPercent(MetricKind::kUtilization));
  EXPECT_FALSE(MetricIsPercent(MetricKind::kAvgTurnaroundH));
  EXPECT_EQ(Fig6Metrics().size(), 7u);
}

}  // namespace
}  // namespace hs
