// Streaming percentile aggregation: digest accuracy against the exact
// batch percentile, unknown-metric errors, Tee fan-out, and the
// merge-determinism property — a sharded (out-of-order) stream fed through
// MergingResultSink digests to exactly the single-process result.
#include "exp/quantile_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/runner.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hs {
namespace {

SpecResult RowWithTurnaround(double hours) {
  SpecResult row;
  row.result.avg_turnaround_h = hours;
  row.result.utilization = hours / 100.0;
  return row;
}

TEST(QuantileSinkTest, DigestsStreamedRowsWithoutMaterializingThem) {
  QuantileResultSink sink;
  std::vector<double> values;
  Rng rng(42);
  for (std::size_t i = 0; i < 5000; ++i) {
    const double v = rng.LogNormal(1.0, 0.7);
    values.push_back(v);
    sink.OnResult(i, RowWithTurnaround(v));
  }
  EXPECT_EQ(sink.rows(), 5000u);
  const RunningStats& stats = sink.Stats("avg_turnaround_h");
  EXPECT_EQ(stats.count(), 5000u);
  EXPECT_DOUBLE_EQ(stats.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(stats.max(), *std::max_element(values.begin(), values.end()));
  // P^2 estimates track the exact batch percentiles closely on a smooth
  // heavy-tailed stream (deterministic: fixed seed, fixed order).
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = Percentile(values, q);
    EXPECT_NEAR(sink.Quantile("avg_turnaround_h", q), exact, 0.05 * exact)
        << "q=" << q;
  }
  // Derived metrics digest independently.
  EXPECT_NEAR(sink.Stats("utilization").mean(), stats.mean() / 100.0, 1e-9);
}

TEST(QuantileSinkTest, ExactForTinyGrids) {
  QuantileResultSink sink;
  for (std::size_t i = 0; i < 4; ++i) {
    sink.OnResult(i, RowWithTurnaround(static_cast<double>(i + 1)));
  }
  // Four rows: the estimator still holds the full sample, so quantiles are
  // exact order-statistic interpolations.
  EXPECT_DOUBLE_EQ(sink.Quantile("avg_turnaround_h", 0.5),
                   Percentile({1.0, 2.0, 3.0, 4.0}, 0.5));
  EXPECT_DOUBLE_EQ(sink.Quantile("avg_turnaround_h", 0.99),
                   Percentile({1.0, 2.0, 3.0, 4.0}, 0.99));
}

TEST(QuantileSinkTest, UnknownMetricAndQuantileThrowNamingKnown) {
  QuantileResultSink sink;
  try {
    sink.Stats("bogus_metric");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus_metric"), std::string::npos);
    EXPECT_NE(what.find("avg_turnaround_h"), std::string::npos);
  }
  EXPECT_THROW(sink.Quantile("utilization", 0.42), std::invalid_argument);
  QuantileResultSink::Options bad;
  bad.quantiles = {1.5};
  EXPECT_THROW(QuantileResultSink{bad}, std::invalid_argument);
}

// The property bench_spec_grid --digest relies on: behind a
// MergingResultSink, completion order does not affect the digest, so a
// sharded grid digests to exactly the single-process numbers.
TEST(QuantileSinkTest, MergeDeterministicAcrossCompletionOrders) {
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) values.push_back(rng.Uniform(0.0, 50.0));

  QuantileResultSink in_order;
  for (std::size_t i = 0; i < values.size(); ++i) {
    in_order.OnResult(i, RowWithTurnaround(values[i]));
  }

  QuantileResultSink reordered;
  MergingResultSink merged(reordered, values.size());
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (const std::size_t i : order) {
    merged.OnResult(i, RowWithTurnaround(values[i]));
  }
  merged.Finish();

  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(reordered.Quantile("avg_turnaround_h", q),
                     in_order.Quantile("avg_turnaround_h", q));
  }
  EXPECT_DOUBLE_EQ(reordered.Stats("avg_turnaround_h").mean(),
                   in_order.Stats("avg_turnaround_h").mean());
}

TEST(QuantileSinkTest, SummaryListsEveryMetricAndQuantile) {
  QuantileResultSink sink;
  sink.OnResult(0, RowWithTurnaround(12.5));
  const std::string summary = sink.Summary();
  for (const std::string& metric : sink.metrics()) {
    EXPECT_NE(summary.find(metric), std::string::npos) << summary;
  }
  EXPECT_NE(summary.find("p50"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
}

TEST(TeeSinkTest, ForwardsToEverySinkAndRejectsNull) {
  QuantileResultSink a, b;
  TeeResultSink tee({&a, &b});
  tee.OnResult(0, RowWithTurnaround(3.0));
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(b.rows(), 1u);
  EXPECT_THROW(TeeResultSink({&a, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace hs
