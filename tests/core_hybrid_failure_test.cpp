// Failure-injection extension: hardware failures interrupt executions like
// unplanned preemptions; rigid jobs restart from their last checkpoint.
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

HybridConfig FailingConfig(SimTime node_mtbf) {
  HybridConfig config = TestConfig(BaselineMechanism());
  config.engine.inject_failures = true;
  config.engine.failure_node_mtbf = node_mtbf;
  return config;
}

TEST(FailureTest, DisabledByDefault) {
  const HybridConfig config = MakePaperConfig(BaselineMechanism());
  EXPECT_FALSE(config.engine.inject_failures);
}

TEST(FailureTest, JobSurvivesFailuresAndCompletes) {
  // Aggressive failures: a 32-node job with ~1000 s node MTBF fails every
  // ~31 s of the 2000 s execution; it must still finish eventually because
  // progress-free restarts... would loop forever for rigid jobs without
  // checkpoints — use a malleable job (progress survives failures).
  TraceBuilder builder(64);
  builder.AddMalleable(0, 32, 8, 2000, 10, 100000);
  HybridHarness h(std::move(builder).Build(), FailingConfig(100'000 * 32));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.jobs_killed, 0u);
}

TEST(FailureTest, RigidRestartsFromCheckpoint) {
  HybridConfig config = FailingConfig(/*node mtbf*/ 3000LL * 8);  // job mtbf 3000 s
  // Short checkpoint interval so restarts make progress.
  config.engine.checkpoint.node_mtbf = 30 * kDay;  // Daly input (not failures)
  config.engine.checkpoint.min_interval = 10 * kMinute;
  config.engine.checkpoint.interval_scale = 0.05;
  TraceBuilder builder(64);
  builder.AddRigid(0, 8, 6 * kHour, 10, 2 * kDay);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_GT(r.failures, 0u);
  EXPECT_GT(r.lost_node_hours, 0.0);     // work since last dump is lost
  EXPECT_EQ(r.preemptions, 0u);          // failures are not preemptions
  EXPECT_DOUBLE_EQ(r.rigid_preempt_ratio, 0.0);
}

TEST(FailureTest, DeterministicAcrossRuns) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 32, 8, 5000, 10, 100000);
  builder.AddRigid(100, 16, 5000, 10, 100000);
  Trace trace = std::move(builder).Build();
  const HybridConfig config = FailingConfig(500'000);
  HybridHarness a(Trace(trace), config);
  HybridHarness b(Trace(trace), config);
  a.Run();
  b.Run();
  const SimResult ra = a.Finalize();
  const SimResult rb = b.Finalize();
  EXPECT_EQ(ra.failures, rb.failures);
  EXPECT_DOUBLE_EQ(ra.avg_turnaround_h, rb.avg_turnaround_h);
}

TEST(FailureTest, NoFailuresWithHugeMtbf) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 8, 1000, 0, 2000);
  HybridHarness h(std::move(builder).Build(),
                  FailingConfig(1'000'000LL * 365 * kDay));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(h.sim_.now(), 1000);
}

TEST(FailureTest, FailureDuringDrainStillServesOnDemand) {
  HybridConfig config = FailingConfig(2'000 * 64);  // frequent failures
  config.mechanism = {NoticePolicy::kNone, ArrivalPolicy::kPaa};
  config.engine.malleable_flexible = true;
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 10000, 10, 100000);
  builder.AddOnDemand(5000, 32, 500, 0, 1000);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.jobs_killed, 0u);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");
}

}  // namespace
}  // namespace hs
