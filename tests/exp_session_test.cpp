// SimulationSession: spec-driven construction, determinism, and byte-level
// agreement with the legacy RunSimulation entry point on the same seed.
#include "exp/session.h"

#include <gtest/gtest.h>

#include "exp/runner.h"

namespace hs {
namespace {

/// Field-by-field exact comparison (the facade must not perturb a single
/// bit of the metrics relative to the legacy path).
void ExpectIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.avg_turnaround_h, b.avg_turnaround_h);
  EXPECT_EQ(a.rigid_turnaround_h, b.rigid_turnaround_h);
  EXPECT_EQ(a.malleable_turnaround_h, b.malleable_turnaround_h);
  EXPECT_EQ(a.od_turnaround_h, b.od_turnaround_h);
  EXPECT_EQ(a.avg_wait_h, b.avg_wait_h);
  EXPECT_EQ(a.od_instant_rate, b.od_instant_rate);
  EXPECT_EQ(a.od_instant_rate_strict, b.od_instant_rate_strict);
  EXPECT_EQ(a.od_avg_delay_s, b.od_avg_delay_s);
  EXPECT_EQ(a.rigid_preempt_ratio, b.rigid_preempt_ratio);
  EXPECT_EQ(a.malleable_preempt_ratio, b.malleable_preempt_ratio);
  EXPECT_EQ(a.malleable_shrink_ratio, b.malleable_shrink_ratio);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.useful_utilization, b.useful_utilization);
  EXPECT_EQ(a.allocated_utilization, b.allocated_utilization);
  EXPECT_EQ(a.window_utilization, b.window_utilization);
  EXPECT_EQ(a.lost_node_hours, b.lost_node_hours);
  EXPECT_EQ(a.setup_node_hours, b.setup_node_hours);
  EXPECT_EQ(a.checkpoint_node_hours, b.checkpoint_node_hours);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.od_jobs, b.od_jobs);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.shrinks, b.shrinks);
  EXPECT_EQ(a.expands, b.expands);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SessionTest, SpecSessionMatchesLegacyRunSimulation) {
  const SimSpec spec = SimSpec::Parse("CUA&SPAA/FCFS/W5/preset=tiny/seed=5");
  // Legacy path: materialize the trace and config by hand, run through the
  // compatibility wrapper.
  const SimResult legacy = RunSimulation(spec.BuildTrace(), spec.BuildConfig());
  // Facade path.
  const SimResult facade = SimulationSession(spec).Run();
  ExpectIdentical(legacy, facade);
  EXPECT_GT(facade.jobs_completed, 0u);
}

TEST(SessionTest, DeterministicAcrossSessions) {
  const SimSpec spec = SimSpec::Parse("CUP&PAA/FCFS/W2/preset=tiny/seed=8");
  const SimResult a = SimulationSession(spec).Run();
  const SimResult b = SimulationSession(spec).Run();
  ExpectIdentical(a, b);
}

TEST(SessionTest, RunSpecConvenience) {
  const SimResult r = RunSpec("baseline/FCFS/W5/preset=tiny/seed=2");
  EXPECT_GT(r.jobs_completed, 0u);
}

TEST(SessionTest, ExposesOwnedComponents) {
  const SimSpec spec = SimSpec::Parse("N&PAA/FCFS/W5/preset=tiny/seed=4");
  SimulationSession session(spec);
  EXPECT_EQ(session.spec(), spec);
  EXPECT_GT(session.trace().jobs.size(), 0u);
  EXPECT_EQ(session.config().mechanism, ParseMechanism("N&PAA"));
  // Partial runs are observable through the owned simulator.
  session.Run(6 * kHour);
  EXPECT_EQ(session.simulator().now() <= 6 * kHour, true);
  const SimResult partial = session.Finalize();
  const SimResult full = session.Run();
  EXPECT_GE(full.jobs_completed, partial.jobs_completed);
}

TEST(SessionTest, RejectsInconsistentConfig) {
  const SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/preset=tiny");
  HybridConfig config = spec.BuildConfig();
  config.reservation_timeout = -1;
  EXPECT_THROW(SimulationSession(spec.BuildTrace(), config), std::invalid_argument);
}

TEST(SessionTest, RunnerCellMatchesStandaloneSession) {
  ThreadPool pool(2);
  ExperimentRunner runner(pool);
  const SimSpec spec = SimSpec::Parse("N&SPAA/FCFS/W5/preset=tiny/seed=6");
  const auto rows = runner.Run({spec});
  ASSERT_EQ(rows.size(), 1u);
  ExpectIdentical(rows[0].result, SimulationSession(spec).Run());
}

}  // namespace
}  // namespace hs
