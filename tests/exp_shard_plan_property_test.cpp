// Property tests for ShardPlan over random cost vectors: both strategies
// must be deterministic, cover every index exactly once with ascending
// in-shard order, and never emit an empty shard; the LPT (cost-weighted)
// strategy must additionally stay within the classic 2x factor of the
// makespan lower bound max(total/K, max_cost) — the guarantee that makes
// it safe to prefer over round-robin on mixed-horizon grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exp/shard_plan.h"
#include "util/rng.h"

namespace hs {
namespace {

/// A grid of n cells whose only cost-relevant difference is the horizon
/// (SpecCost is the spec's weeks), with weeks drawn from rng in [1, 52].
std::vector<SimSpec> RandomCostGrid(Rng& rng, std::size_t n) {
  const SimSpec base = SimSpec::Parse("baseline/FCFS/W5/preset=tiny");
  std::vector<SimSpec> specs(n, base);
  for (SimSpec& spec : specs) {
    spec.weeks = static_cast<int>(rng.UniformInt(1, 52));
  }
  return specs;
}

double ShardLoad(const ShardPlan& plan, std::size_t k,
                 const std::vector<SimSpec>& specs) {
  double load = 0.0;
  for (const std::size_t index : plan.shards[k]) load += SpecCost(specs[index]);
  return load;
}

void CheckPartitionInvariants(const ShardPlan& plan,
                              const std::vector<SimSpec>& specs,
                              std::size_t requested_shards) {
  EXPECT_EQ(plan.spec_count, specs.size());
  EXPECT_EQ(plan.shard_count(), std::min(requested_shards, specs.size()));
  std::vector<int> seen(specs.size(), 0);
  for (const std::vector<std::size_t>& shard : plan.shards) {
    EXPECT_FALSE(shard.empty()) << "empty shards must never be emitted";
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()))
        << "in-shard indices must ascend";
    for (const std::size_t index : shard) {
      ASSERT_LT(index, specs.size());
      seen[index] += 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "spec index " << i
                          << " must appear in exactly one shard";
  }
}

TEST(ShardPlanPropertyTest, RandomGridsSatisfyPartitionInvariants) {
  for (int trial = 0; trial < 300; ++trial) {
    Rng rng(0x5A4DuLL * 1000 + static_cast<std::uint64_t>(trial));
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 10));
    const std::vector<SimSpec> specs = RandomCostGrid(rng, n);
    for (const ShardStrategy strategy :
         {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
      SCOPED_TRACE("trial " + std::to_string(trial) + ", n=" + std::to_string(n) +
                   ", k=" + std::to_string(k) + ", " +
                   ShardStrategyName(strategy));
      const ShardPlan plan = MakeShardPlan(specs, k, strategy);
      CheckPartitionInvariants(plan, specs, k);
    }
  }
}

TEST(ShardPlanPropertyTest, PlansAreDeterministic) {
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng(0xDE7uLL * 1000 + static_cast<std::uint64_t>(trial));
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 10));
    const std::vector<SimSpec> specs = RandomCostGrid(rng, n);
    for (const ShardStrategy strategy :
         {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
      const ShardPlan first = MakeShardPlan(specs, k, strategy);
      const ShardPlan second = MakeShardPlan(specs, k, strategy);
      EXPECT_EQ(first.shards, second.shards)
          << "trial " << trial << ": identical inputs must scatter "
          << "identically (" << ShardStrategyName(strategy) << ")";
    }
  }
}

TEST(ShardPlanPropertyTest, LptMakespanWithinTwiceTheLowerBound) {
  // max(total/K, max_cost) lower-bounds any schedule's makespan; greedy
  // LPT is classically within 2x of it (in fact 4/3 - 1/(3K), but 2x is
  // the contract worth locking: a regression to naive splitting breaks it).
  for (int trial = 0; trial < 300; ++trial) {
    Rng rng(0x17B7uLL * 1000 + static_cast<std::uint64_t>(trial));
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 10));
    const std::vector<SimSpec> specs = RandomCostGrid(rng, n);
    const ShardPlan plan = MakeShardPlan(specs, k, ShardStrategy::kCostWeighted);

    double total = 0.0;
    double max_cost = 0.0;
    for (const SimSpec& spec : specs) {
      total += SpecCost(spec);
      max_cost = std::max(max_cost, SpecCost(spec));
    }
    const double lower_bound =
        std::max(total / static_cast<double>(plan.shard_count()), max_cost);
    double makespan = 0.0;
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
      makespan = std::max(makespan, ShardLoad(plan, s, specs));
    }
    EXPECT_LE(makespan, 2.0 * lower_bound + 1e-9)
        << "trial " << trial << ": n=" << n << ", k=" << k
        << " makespan=" << makespan << " lower_bound=" << lower_bound;
  }
}

}  // namespace
}  // namespace hs
