// Fork-determinism differential tests for the what-if machinery (the PR's
// acceptance criterion): for every one of the original seven mechanisms,
// the `whatif` answer must byte-equal a cold batch run of that mechanism
// over (base trace + online submissions + probe), truncated at the probe's
// start — and answers must be byte-deterministic across repeated calls and
// across the fork / op-log-replay paths.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/session.h"
#include "service/service_session.h"
#include "util/time.h"

namespace hs {
namespace {

constexpr const char* kOriginalMechanisms[] = {
    "baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA",
};

SimSpec ServiceSpec(const std::string& mechanism) {
  SimSpec spec = SimSpec::Parse(mechanism + "/FCFS/W5/preset=midsize");
  spec.seed = 3;
  return spec;
}

JobRecord RigidProbe(SimTime submit) {
  JobRecord probe;
  probe.klass = JobClass::kRigid;
  probe.size = probe.min_size = 512;
  probe.submit_time = submit;
  probe.compute_time = kHour;
  probe.estimate = kHour + 10 * kMinute;
  return probe;
}

/// Drives a session through a representative online history: advance two
/// days, submit a noticed on-demand job and a rigid job, advance further.
void DriveHistory(ServiceSession& session) {
  session.AdvanceTo(2 * kDay);

  JobRecord od;
  od.klass = JobClass::kOnDemand;
  od.size = od.min_size = 256;
  od.notice = NoticeClass::kAccurate;
  od.notice_time = session.now() + 10 * kMinute;
  od.submit_time = session.now() + kHour;
  od.predicted_arrival = od.submit_time;
  od.compute_time = 2 * kHour;
  od.estimate = 2 * kHour + 5 * kMinute;
  session.Submit(od);

  JobRecord rigid;
  rigid.klass = JobClass::kRigid;
  rigid.size = rigid.min_size = 128;
  rigid.submit_time = session.now() + 30 * kMinute;
  rigid.compute_time = 4 * kHour;
  rigid.estimate = 5 * kHour;
  session.Submit(rigid);

  session.AdvanceTo(3 * kDay);
}

/// The oracle: a cold batch SimulationSession of `mechanism` over the
/// session's effective trace (base + online jobs + probe appended with
/// dense ids), run through the same RunUntilStarted truncation.
WhatIfAnswer ColdBatchOracle(const ServiceSession& service,
                             const std::string& mechanism,
                             const JobRecord& probe) {
  Trace effective = service.base_trace();
  for (const SessionOp& op : service.ops()) {
    if (op.kind == SessionOp::Kind::kSubmit) effective.jobs.push_back(op.job);
  }
  JobRecord appended = probe;
  appended.id = static_cast<JobId>(effective.jobs.size());
  effective.jobs.push_back(appended);

  SimSpec spec = service.spec();
  spec.mechanism = mechanism;
  SimulationSession batch(spec, std::make_shared<const Trace>(std::move(effective)));
  return RunUntilStarted(batch, appended.id, mechanism);
}

// The headline criterion: whatif == truncated cold batch run, for all
// seven original mechanisms, byte-for-byte in wire format.
TEST(ServiceWhatIfTest, MatchesColdBatchOracleForAllOriginalMechanisms) {
  ServiceSession service(ServiceSpec("CUP&SPAA"));
  DriveHistory(service);

  const JobRecord probe = RigidProbe(service.now() + 10 * kMinute);
  std::vector<std::string> mechanisms(std::begin(kOriginalMechanisms),
                                      std::end(kOriginalMechanisms));
  const std::vector<WhatIfAnswer> answers = service.WhatIf(probe, mechanisms);
  ASSERT_EQ(answers.size(), mechanisms.size());

  for (std::size_t i = 0; i < mechanisms.size(); ++i) {
    const WhatIfAnswer oracle = ColdBatchOracle(service, mechanisms[i], probe);
    EXPECT_EQ(FormatWhatIfAnswer(answers[i]), FormatWhatIfAnswer(oracle))
        << "mechanism " << mechanisms[i];
    EXPECT_TRUE(answers[i].started) << mechanisms[i];
  }
}

// Repeated calls — and the live session afterwards — are unperturbed:
// what-if runs on private copies only.
TEST(ServiceWhatIfTest, ByteDeterministicAndNonPerturbing) {
  ServiceSession service(ServiceSpec("CUA&PAA"));
  DriveHistory(service);
  const SimTime now_before = service.now();
  const std::size_t ops_before = service.ops_logged();

  const JobRecord probe = RigidProbe(service.now() + 10 * kMinute);
  const std::vector<std::string> mechanisms = {"baseline", "CUA&PAA", "CUP&SPAA"};
  const std::vector<WhatIfAnswer> first = service.WhatIf(probe, mechanisms);
  const std::vector<WhatIfAnswer> second = service.WhatIf(probe, mechanisms);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(FormatWhatIfAnswer(first[i]), FormatWhatIfAnswer(second[i]));
  }

  EXPECT_EQ(service.now(), now_before);
  EXPECT_EQ(service.ops_logged(), ops_before);
  // The probe never leaked into the live session.
  EXPECT_EQ(service.Query(static_cast<JobId>(service.base_trace().jobs.size() + 2)).state,
            ServiceSession::JobState::kUnknown);
}

// The fork fast path (live mechanism) and the op-log replay path must
// agree — forced replay produces the same bytes.
TEST(ServiceWhatIfTest, ForkPathEqualsReplayPath) {
  ServiceSession service(ServiceSpec("N&SPAA"));
  DriveHistory(service);

  const JobRecord probe = RigidProbe(service.now() + 10 * kMinute);
  const std::vector<std::string> mechanisms = {"N&SPAA"};
  const std::vector<WhatIfAnswer> forked = service.WhatIf(probe, mechanisms);
  const std::vector<WhatIfAnswer> replayed =
      service.WhatIf(probe, mechanisms, /*force_replay=*/true);
  ASSERT_EQ(forked.size(), 1u);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(FormatWhatIfAnswer(forked[0]), FormatWhatIfAnswer(replayed[0]));
}

// An on-demand probe with an advance notice exercises the notice-driven
// mechanisms' reservation machinery through the what-if path.
TEST(ServiceWhatIfTest, OnDemandProbeMatchesOracle) {
  ServiceSession service(ServiceSpec("CUP&SPAA"));
  DriveHistory(service);

  JobRecord probe;
  probe.klass = JobClass::kOnDemand;
  probe.size = probe.min_size = 384;
  probe.notice = NoticeClass::kAccurate;
  probe.notice_time = service.now() + 5 * kMinute;
  probe.submit_time = service.now() + kHour;
  probe.predicted_arrival = probe.submit_time;
  probe.compute_time = kHour;
  probe.estimate = kHour + 5 * kMinute;

  for (const char* mechanism : {"CUP&SPAA", "N&PAA", "baseline"}) {
    const std::vector<WhatIfAnswer> answers =
        service.WhatIf(probe, {mechanism});
    ASSERT_EQ(answers.size(), 1u);
    const WhatIfAnswer oracle = ColdBatchOracle(service, mechanism, probe);
    EXPECT_EQ(FormatWhatIfAnswer(answers[0]), FormatWhatIfAnswer(oracle))
        << mechanism;
  }
}

// Unknown mechanisms are rejected loudly.
TEST(ServiceWhatIfTest, UnknownMechanismThrows) {
  ServiceSession service(ServiceSpec("baseline"));
  const JobRecord probe = RigidProbe(service.now() + kHour);
  EXPECT_THROW(service.WhatIf(probe, {"NOPE&NOPE"}), std::invalid_argument);
}

}  // namespace
}  // namespace hs
