// The behavioral mechanism plugin layer: every NoticeStrategy /
// ArrivalStrategy hook unit-tested against a MechanismContext fake, the
// registry's factory round-trips (including the CUP-DEFER plugin), and the
// CUP-DEFER deferral behavior end-to-end through the scheduler.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/advance_notice.h"
#include "core/arrival.h"
#include "core/mechanism.h"
#include "core/mechanism_context.h"
#include "core/mechanism_strategy.h"
#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

/// Scripted MechanismContext: state is plain maps the test sets up; every
/// mutation is recorded instead of applied to a real scheduler.
class FakeMechanismContext final : public MechanismContext {
 public:
  // --- scripted state ---
  std::map<JobId, JobRecord> records;
  std::map<JobId, RunningJob> running;
  std::map<JobId, Reservation> open_reservations;
  std::map<JobId, int> deficits;
  std::map<JobId, int> drain_pending;
  std::map<JobId, SimTime> estimated_ends;
  std::map<JobId, double> preempt_costs;
  std::map<JobId, SimTime> next_checkpoints;
  std::map<JobId, int> shrinkable_nodes;
  std::map<JobId, int> reserved_counts;
  int free_count = 0;

  // --- recorded mutations ---
  struct ScheduledEvent {
    SimTime time;
    EventKind kind;
    JobId job;
    std::int64_t aux;
  };
  struct LeaseRecord {
    JobId od;
    JobId lender;
    int nodes;
    LeaseKind kind;
  };
  std::vector<ScheduledEvent> scheduled;
  std::vector<JobId> preempted;
  std::vector<std::pair<JobId, JobId>> drained;  // (victim, od)
  std::vector<std::pair<JobId, int>> shrunk;
  std::vector<LeaseRecord> leases;
  std::vector<JobId> gave_to;

  JobRecord& AddRecord(JobId id, JobClass klass, int size,
                       SimTime predicted = kNever) {
    JobRecord& rec = records[id];
    rec.id = id;
    rec.klass = klass;
    rec.size = size;
    rec.min_size = size;
    rec.predicted_arrival = predicted;
    rec.setup_time = 10;
    return rec;
  }

  RunningJob& AddRunning(JobId id, int alloc, bool malleable, SimTime est_end,
                         double cost) {
    RunningJob& r = running[id];
    r.id = id;
    r.rec = &records.at(id);
    r.alloc = alloc;
    r.malleable_mode = malleable;
    estimated_ends[id] = est_end;
    preempt_costs[id] = cost;
    return r;
  }

  // --- queries ---
  const JobRecord& record(JobId id) const override { return records.at(id); }
  std::vector<JobId> RunningIds() const override {
    std::vector<JobId> ids;
    for (const auto& [id, r] : running) ids.push_back(id);
    return ids;
  }
  const RunningJob* Running(JobId id) const override {
    const auto it = running.find(id);
    return it == running.end() ? nullptr : &it->second;
  }
  bool IsPreemptable(JobId id) const override {
    const RunningJob* r = Running(id);
    return r != nullptr && !r->draining && !records.at(id).is_on_demand();
  }
  SimTime EstimatedEnd(JobId id, SimTime) const override {
    const auto it = estimated_ends.find(id);
    return it == estimated_ends.end() ? kNever : it->second;
  }
  double PreemptionCostNodeSec(JobId id, SimTime) const override {
    const auto it = preempt_costs.find(id);
    return it == preempt_costs.end() ? 0.0 : it->second;
  }
  SimTime NextCheckpointCompletion(JobId id, SimTime) const override {
    const auto it = next_checkpoints.find(id);
    return it == next_checkpoints.end() ? kNever : it->second;
  }
  int ShrinkableNodes(JobId id) const override {
    const auto it = shrinkable_nodes.find(id);
    return it == shrinkable_nodes.end() ? 0 : it->second;
  }
  int FreeCount() const override { return free_count; }
  int ReservedCount(JobId od) const override {
    const auto it = reserved_counts.find(od);
    return it == reserved_counts.end() ? 0 : it->second;
  }
  bool HasReservation(JobId od) const override {
    return open_reservations.count(od) > 0;
  }
  const Reservation* FindReservation(JobId od) const override {
    const auto it = open_reservations.find(od);
    return it == open_reservations.end() ? nullptr : &it->second;
  }
  int ReservationDeficit(JobId od) const override {
    const auto it = deficits.find(od);
    return it == deficits.end() ? 0 : it->second;
  }
  int PendingDrainNodes(JobId od) const override {
    const auto it = drain_pending.find(od);
    return it == drain_pending.end() ? 0 : it->second;
  }
  SimTime drain_warning() const override { return 2 * kMinute; }
  SimTime reservation_timeout() const override { return 10 * kMinute; }
  Collector& collector() override { return collector_; }

  // --- recorded mutations ---
  void OpenReservation(JobId od, int target, SimTime notice_time,
                       SimTime predicted_arrival) override {
    Reservation r;
    r.od = od;
    r.target = target;
    r.notice_time = notice_time;
    r.predicted_arrival = predicted_arrival;
    open_reservations[od] = r;
    deficits[od] = target - ReservedCount(od);
  }
  EventId Schedule(SimTime time, EventKind kind, JobId job, std::int64_t aux) override {
    scheduled.push_back({time, kind, job, aux});
    return static_cast<EventId>(scheduled.size());
  }
  std::vector<int> PreemptNow(JobId victim, SimTime, PreemptKind) override {
    preempted.push_back(victim);
    return std::vector<int>(static_cast<std::size_t>(running.at(victim).alloc), 0);
  }
  void BeginDrain(JobId victim, JobId od, SimTime) override {
    drained.emplace_back(victim, od);
    running.at(victim).draining = true;
    running.at(victim).drain_for = od;
  }
  std::vector<int> ShrinkBy(JobId victim, int nodes, SimTime) override {
    shrunk.emplace_back(victim, nodes);
    return std::vector<int>(static_cast<std::size_t>(nodes), 0);
  }
  void RecordLease(JobId od, JobId lender, int nodes, LeaseKind kind) override {
    leases.push_back({od, lender, nodes, kind});
  }
  void GiveTo(JobId od) override { gave_to.push_back(od); }

 private:
  Collector collector_{5 * kMinute};
};

// --- CollectNotices (CUA) ---------------------------------------------------

TEST(CollectNoticesTest, OpensReservationAndSchedulesTimeout) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, /*predicted=*/5000);
  CollectNotices cua;
  cua.OnNotice(ctx, 7, 1000);
  ASSERT_TRUE(ctx.HasReservation(7));
  EXPECT_EQ(ctx.FindReservation(7)->target, 32);
  EXPECT_EQ(ctx.FindReservation(7)->notice_time, 1000);
  ASSERT_EQ(ctx.scheduled.size(), 1u);
  EXPECT_EQ(ctx.scheduled[0].kind, EventKind::kReservationTimeout);
  EXPECT_EQ(ctx.scheduled[0].time, 5000 + 10 * kMinute);
  EXPECT_EQ(ctx.scheduled[0].job, 7);
  EXPECT_TRUE(ctx.preempted.empty());  // CUA never preempts
}

TEST(CollectNoticesTest, DuplicateNoticeIsIgnored) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  CollectNotices cua;
  cua.OnNotice(ctx, 7, 1000);
  cua.OnNotice(ctx, 7, 1100);
  EXPECT_EQ(ctx.scheduled.size(), 1u);  // no second timeout
}

// --- PrepareNotices (CUP) ---------------------------------------------------

TEST(PrepareNoticesTest, PlansPreemptionForTheDeficit) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  ctx.AddRunning(0, 64, /*malleable=*/false, /*est_end=*/50000, /*cost=*/10.0);
  PrepareNotices cup;
  cup.OnNotice(ctx, 7, 1000);
  // Timeout + one planned preemption (no checkpoint: fires at the predicted
  // arrival itself).
  ASSERT_EQ(ctx.scheduled.size(), 2u);
  EXPECT_EQ(ctx.scheduled[1].kind, EventKind::kPlannedPreempt);
  EXPECT_EQ(ctx.scheduled[1].job, 0);
  EXPECT_EQ(ctx.scheduled[1].aux, 7);
  EXPECT_EQ(ctx.scheduled[1].time, 5000);
}

TEST(PrepareNoticesTest, SkipsPlanningWhenReleasesCover) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  // Ends before the predicted arrival: counted as an upcoming release.
  ctx.AddRunning(0, 64, false, /*est_end=*/4000, 10.0);
  PrepareNotices cup;
  cup.OnNotice(ctx, 7, 1000);
  ASSERT_EQ(ctx.scheduled.size(), 1u);  // only the timeout
  EXPECT_EQ(ctx.scheduled[0].kind, EventKind::kReservationTimeout);
}

TEST(PrepareNoticesTest, PlannedPreemptExecutesOnRigidVictim) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  ctx.AddRunning(0, 64, false, 50000, 10.0);
  ctx.OpenReservation(7, 32, 1000, 5000);  // deficit 32
  PrepareNotices cup;
  cup.OnPlannedPreempt(ctx, 0, 7, 5000);
  ASSERT_EQ(ctx.preempted.size(), 1u);
  EXPECT_EQ(ctx.preempted[0], 0);
  ASSERT_EQ(ctx.leases.size(), 1u);
  EXPECT_EQ(ctx.leases[0].kind, LeaseKind::kPlanPreempted);
  EXPECT_EQ(ctx.leases[0].lender, 0);
  EXPECT_EQ(ctx.leases[0].nodes, 64);
  EXPECT_EQ(ctx.gave_to, std::vector<JobId>{7});
}

TEST(PrepareNoticesTest, PlannedPreemptDrainsMalleableVictim) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kMalleable, 64);
  ctx.AddRunning(0, 64, /*malleable=*/true, 50000, 10.0);
  ctx.OpenReservation(7, 32, 1000, 5000);
  PrepareNotices cup;
  cup.OnPlannedPreempt(ctx, 0, 7, 4880);
  EXPECT_TRUE(ctx.preempted.empty());
  ASSERT_EQ(ctx.drained.size(), 1u);
  EXPECT_EQ(ctx.drained[0], (std::pair<JobId, JobId>{0, 7}));
  EXPECT_TRUE(ctx.leases.empty());  // recorded when the warning expires
}

TEST(PrepareNoticesTest, PlannedPreemptValidatesStaleness) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  ctx.AddRunning(0, 64, false, 50000, 10.0);
  PrepareNotices cup;
  // No reservation at all: stale event.
  cup.OnPlannedPreempt(ctx, 0, 7, 5000);
  EXPECT_TRUE(ctx.preempted.empty());
  // Arrived already: the arrival policy owns the deficit now.
  ctx.OpenReservation(7, 32, 1000, 5000);
  ctx.open_reservations[7].arrived = true;
  cup.OnPlannedPreempt(ctx, 0, 7, 5000);
  EXPECT_TRUE(ctx.preempted.empty());
  // Covered: nothing to do.
  ctx.open_reservations[7].arrived = false;
  ctx.deficits[7] = 0;
  cup.OnPlannedPreempt(ctx, 0, 7, 5000);
  EXPECT_TRUE(ctx.preempted.empty());
}

// --- DeferredPrepareNotices (CUP-DEFER) -------------------------------------

TEST(DeferredPrepareNoticesTest, DefersWhileExpectedReleasesCover) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);   // the planned victim
  ctx.AddRecord(1, JobClass::kRigid, 32);   // releases before the arrival
  ctx.AddRunning(0, 64, false, 50000, 10.0);
  ctx.AddRunning(1, 32, false, /*est_end=*/4500, 99.0);
  ctx.OpenReservation(7, 32, 1000, 5000);   // deficit 32 == expected release
  DeferredPrepareNotices defer;
  defer.OnPlannedPreempt(ctx, 0, 7, 2000);
  EXPECT_TRUE(ctx.preempted.empty());
  // A re-check was scheduled halfway to the predicted arrival instead.
  ASSERT_EQ(ctx.scheduled.size(), 1u);
  EXPECT_EQ(ctx.scheduled[0].kind, EventKind::kPlannedPreempt);
  EXPECT_EQ(ctx.scheduled[0].time, 2000 + (5000 - 2000) / 2);
  EXPECT_EQ(ctx.scheduled[0].job, 0);
  EXPECT_EQ(ctx.scheduled[0].aux, 7);
}

TEST(DeferredPrepareNoticesTest, ExecutesWhenForecastFallsShort) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  ctx.AddRunning(0, 64, false, 50000, 10.0);  // nothing else releases in time
  ctx.OpenReservation(7, 32, 1000, 5000);
  DeferredPrepareNotices defer;
  defer.OnPlannedPreempt(ctx, 0, 7, 2000);
  ASSERT_EQ(ctx.preempted.size(), 1u);
  EXPECT_EQ(ctx.preempted[0], 0);
  EXPECT_TRUE(ctx.scheduled.empty());  // no re-check: it acted
}

TEST(DeferredPrepareNoticesTest, StopsDeferringInsideTheWarningWindow) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32, 5000);
  ctx.AddRecord(0, JobClass::kRigid, 64);
  ctx.AddRecord(1, JobClass::kRigid, 32);
  ctx.AddRunning(0, 64, false, 50000, 10.0);
  ctx.AddRunning(1, 32, false, 4990, 99.0);
  ctx.OpenReservation(7, 32, 1000, 5000);
  DeferredPrepareNotices defer;
  // 4900 + 120s warning >= 5000: no slack left, must act even though the
  // forecast still covers.
  defer.OnPlannedPreempt(ctx, 0, 7, 4900);
  ASSERT_EQ(ctx.preempted.size(), 1u);
  EXPECT_EQ(ctx.preempted[0], 0);
}

// --- PreemptAtArrival (PAA) -------------------------------------------------

TEST(PreemptAtArrivalTest, PreemptsCheapestVictimsFirst) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 24);
  ctx.AddRecord(0, JobClass::kRigid, 16);
  ctx.AddRecord(1, JobClass::kRigid, 16);
  ctx.AddRecord(2, JobClass::kRigid, 16);
  ctx.AddRunning(0, 16, false, 50000, /*cost=*/30.0);
  ctx.AddRunning(1, 16, false, 50000, /*cost=*/10.0);
  ctx.AddRunning(2, 16, false, 50000, /*cost=*/20.0);
  ctx.deficits[7] = 24;
  PreemptAtArrival paa;
  paa.OnArrival(ctx, 7, 1000);
  // 24 needed: the two cheapest (1 then 2) cover it; 0 survives.
  EXPECT_EQ(ctx.preempted, (std::vector<JobId>{1, 2}));
  ASSERT_EQ(ctx.leases.size(), 2u);
  EXPECT_EQ(ctx.leases[0].kind, LeaseKind::kPreempted);
}

TEST(PreemptAtArrivalTest, InsufficientSupplyPreemptsNothing) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 64);
  ctx.AddRecord(0, JobClass::kRigid, 16);
  ctx.AddRunning(0, 16, false, 50000, 10.0);
  ctx.deficits[7] = 64;
  PreemptAtArrival paa;
  paa.OnArrival(ctx, 7, 1000);
  EXPECT_TRUE(ctx.preempted.empty());  // §III-B2: wait for releases instead
  EXPECT_TRUE(ctx.drained.empty());
}

TEST(PreemptAtArrivalTest, MalleableVictimsAreDrainedNotKilled) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 16);
  ctx.AddRecord(0, JobClass::kMalleable, 32);
  ctx.AddRunning(0, 32, /*malleable=*/true, 50000, 10.0);
  ctx.deficits[7] = 16;
  PreemptAtArrival paa;
  paa.OnArrival(ctx, 7, 1000);
  EXPECT_TRUE(ctx.preempted.empty());
  EXPECT_EQ(ctx.drained, (std::vector<std::pair<JobId, JobId>>{{0, 7}}));
}

TEST(PreemptAtArrivalTest, PendingDrainsNetOutOfTheDeficit) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 16);
  ctx.AddRecord(0, JobClass::kRigid, 16);
  ctx.AddRunning(0, 16, false, 50000, 10.0);
  ctx.deficits[7] = 16;
  ctx.drain_pending[7] = 16;  // a warned drain already covers the request
  PreemptAtArrival paa;
  paa.OnArrival(ctx, 7, 1000);
  EXPECT_TRUE(ctx.preempted.empty());
}

// --- ShrinkPreemptAtArrival (SPAA) ------------------------------------------

TEST(ShrinkPreemptAtArrivalTest, ShrinksEvenlyWhenSupplyCovers) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 20);
  ctx.AddRecord(0, JobClass::kMalleable, 64);
  ctx.AddRecord(1, JobClass::kMalleable, 64);
  ctx.AddRunning(0, 64, true, 50000, 10.0);
  ctx.AddRunning(1, 64, true, 50000, 10.0);
  ctx.shrinkable_nodes[0] = 30;
  ctx.shrinkable_nodes[1] = 10;
  ctx.deficits[7] = 20;
  ShrinkPreemptAtArrival spaa;
  spaa.OnArrival(ctx, 7, 1000);
  EXPECT_TRUE(ctx.preempted.empty());
  ASSERT_EQ(ctx.shrunk.size(), 2u);
  int total = 0;
  for (const auto& [id, amount] : ctx.shrunk) total += amount;
  EXPECT_EQ(total, 20);
  ASSERT_EQ(ctx.leases.size(), 2u);
  EXPECT_EQ(ctx.leases[0].kind, LeaseKind::kShrunk);
  EXPECT_EQ(ctx.gave_to, std::vector<JobId>{7});
}

TEST(ShrinkPreemptAtArrivalTest, FallsBackToPreemptionWhenSupplyShort) {
  FakeMechanismContext ctx;
  ctx.AddRecord(7, JobClass::kOnDemand, 32);
  ctx.AddRecord(0, JobClass::kMalleable, 64);
  ctx.AddRecord(1, JobClass::kRigid, 32);
  ctx.AddRunning(0, 64, true, 50000, 20.0);
  ctx.AddRunning(1, 32, false, 50000, 10.0);
  ctx.shrinkable_nodes[0] = 8;  // cannot cover 32
  ctx.deficits[7] = 32;
  ShrinkPreemptAtArrival spaa;
  spaa.OnArrival(ctx, 7, 1000);
  EXPECT_TRUE(ctx.shrunk.empty());
  // PAA fallback picked the cheapest cover (job 1, 32 nodes).
  EXPECT_EQ(ctx.preempted, std::vector<JobId>{1});
}

// --- runtime resolution and registry ----------------------------------------

TEST(MechanismRuntimeTest, BaselineHasNoArrivalStrategy) {
  const MechanismRuntime rt = MakeMechanismRuntime(BaselineMechanism());
  EXPECT_TRUE(rt.baseline);
  EXPECT_FALSE(rt.uses_notices);
  EXPECT_EQ(rt.arrival, nullptr);
}

TEST(MechanismRuntimeTest, EnumPairsResolveToBuiltInStrategies) {
  const MechanismRuntime rt =
      MakeMechanismRuntime({NoticePolicy::kCup, ArrivalPolicy::kSpaa});
  EXPECT_FALSE(rt.baseline);
  EXPECT_TRUE(rt.uses_notices);
  ASSERT_NE(rt.notice, nullptr);
  ASSERT_NE(rt.arrival, nullptr);
  EXPECT_STREQ(rt.notice->name(), "CUP");
  EXPECT_STREQ(rt.arrival->name(), "SPAA");
}

TEST(MechanismRuntimeTest, RegisteredFactoriesWinForPlugins) {
  const MechanismRuntime rt = MakeMechanismRuntime(ParseMechanism("CUP-DEFER"));
  EXPECT_FALSE(rt.baseline);
  EXPECT_TRUE(rt.uses_notices);
  ASSERT_NE(rt.notice, nullptr);
  EXPECT_STREQ(rt.notice->name(), "CUP-DEFER");
  ASSERT_NE(rt.arrival, nullptr);
  EXPECT_STREQ(rt.arrival->name(), "PAA");
}

TEST(MechanismRuntimeTest, UnregisteredCustomNameThrows) {
  Mechanism bogus;
  bogus.custom = "no-such-mechanism";
  EXPECT_THROW(MakeMechanismRuntime(bogus), std::invalid_argument);
}

TEST(MechanismRegistryTest, EveryRegisteredMechanismRoundTrips) {
  for (const std::string& name : MechanismNames()) {
    const Mechanism m = ParseMechanism(name);
    EXPECT_EQ(CanonicalMechanismName(ToString(m)), name) << name;
    EXPECT_EQ(ParseMechanism(ToString(m)), m) << name;
  }
}

TEST(MechanismRegistryTest, CupDeferIsRegisteredWithMetadata) {
  ASSERT_TRUE(MechanismRegistry().Contains("CUP-DEFER"));
  const Mechanism m = ParseMechanism("cup-defer");
  EXPECT_EQ(m.custom, "CUP-DEFER");
  EXPECT_FALSE(m.is_baseline());
  EXPECT_TRUE(m.uses_notices());
  EXPECT_EQ(ToString(m), "CUP-DEFER");
  EXPECT_EQ(ValidateMechanism(m), "");
}

TEST(MechanismValidationTest, ErrorsNameTheOffendingToken) {
  const std::string queue_with_notice =
      ValidateMechanism({NoticePolicy::kCua, ArrivalPolicy::kQueue});
  EXPECT_NE(queue_with_notice.find("CUA"), std::string::npos);
  Mechanism bogus;
  bogus.custom = "no-such-mechanism";
  EXPECT_NE(ValidateMechanism(bogus).find("no-such-mechanism"), std::string::npos);
  EXPECT_EQ(ValidateMechanism(BaselineMechanism()), "");
  EXPECT_EQ(ValidateMechanism({NoticePolicy::kCup, ArrivalPolicy::kPaa}), "");
}

// --- CUP-DEFER through the full scheduler -----------------------------------

/// A machine where CUP's plan turns stale: at the notice nothing is
/// expected to release in time, so a preemption is planned — but an
/// unexpectedly early completion (job D, estimate far beyond the predicted
/// arrival) plus a forecast release (job B) cover the request before the
/// plan fires. CUP preempts anyway; CUP-DEFER sees the covered forecast and
/// lets the victim run.
Trace DeferScenario() {
  TraceBuilder builder(128);
  builder.AddRigid(0, 64, 10 * kHour, 100, 20 * kHour);  // A: the planned victim
  builder.AddRigid(0, 32, 8400, 0, 8800);                // B: forecast release
  builder.AddOnDemand(0, 32, 7210, 0, 20000);            // D: early completion
  const SimTime notice = 2 * kHour;
  const SimTime predicted = notice + 30 * kMinute;
  builder.AddOnDemand(predicted, 64, 500, 0, 600, NoticeClass::kAccurate, notice,
                      predicted);
  return std::move(builder).Build();
}

HybridConfig DeferConfig(const std::string& mechanism) {
  HybridConfig config = TestConfig(ParseMechanism(mechanism));
  // Short checkpoint cadence so the planned preemption fires well before
  // the predicted arrival (as in the CUP tests).
  config.engine.checkpoint.node_mtbf = 30 * kDay;
  config.engine.checkpoint.min_interval = 10 * kMinute;
  return config;
}

TEST(CupDeferTest, AvoidsThePreemptionCupMakes) {
  HybridHarness cup(DeferScenario(), DeferConfig("CUP&PAA"));
  cup.Run();
  const SimResult cup_result = cup.Finalize();

  HybridHarness defer(DeferScenario(), DeferConfig("CUP-DEFER"));
  defer.Run();
  const SimResult defer_result = defer.Finalize();

  // Both serve the on-demand job instantly...
  EXPECT_DOUBLE_EQ(cup_result.od_instant_rate_strict, 1.0);
  EXPECT_DOUBLE_EQ(defer_result.od_instant_rate_strict, 1.0);
  EXPECT_EQ(cup_result.jobs_completed, 4u);
  EXPECT_EQ(defer_result.jobs_completed, 4u);
  // ...but CUP executes its stale plan while CUP-DEFER lets the victim run.
  EXPECT_GE(cup_result.preemptions, 1u);
  EXPECT_EQ(defer_result.preemptions, 0u);
  EXPECT_LT(defer_result.lost_node_hours, cup_result.lost_node_hours + 1e-9);
}

TEST(CupDeferTest, RunsEndToEndFromASpecString) {
  const SimResult r = RunSpec("CUP-DEFER/FCFS/W5/preset=tiny/weeks=1/seed=3");
  EXPECT_GT(r.jobs_completed, 0u);
  // Deferral trades a little instant-start for fewer preemptions; it must
  // still serve a solid share of on-demand jobs immediately.
  EXPECT_GT(r.od_instant_rate, 0.5);
}

}  // namespace
}  // namespace hs
