#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hs {
namespace {

Trace SampleTrace() {
  Trace trace;
  trace.name = "sample";
  trace.num_nodes = 256;
  JobRecord rigid;
  rigid.id = 0;
  rigid.project = 3;
  rigid.klass = JobClass::kRigid;
  rigid.submit_time = 1000;
  rigid.size = 128;
  rigid.min_size = 128;
  rigid.compute_time = 3600;
  rigid.setup_time = 180;
  rigid.estimate = 5400;
  JobRecord od;
  od.id = 1;
  od.project = 7;
  od.klass = JobClass::kOnDemand;
  od.notice = NoticeClass::kAccurate;
  od.submit_time = 2000;
  od.notice_time = 1000;
  od.predicted_arrival = 2000;
  od.size = 64;
  od.min_size = 64;
  od.compute_time = 600;
  od.setup_time = 30;
  od.estimate = 900;
  JobRecord mall;
  mall.id = 2;
  mall.project = 9;
  mall.klass = JobClass::kMalleable;
  mall.submit_time = 3000;
  mall.size = 100;
  mall.min_size = 20;
  mall.compute_time = 1800;
  mall.setup_time = 10;
  mall.estimate = 2400;
  trace.jobs = {rigid, od, mall};
  return trace;
}

TEST(HswfTest, RoundTripPreservesEverything) {
  const Trace original = SampleTrace();
  std::stringstream buffer;
  WriteHswf(original, buffer);
  const Trace parsed = ReadHswf(buffer);
  EXPECT_EQ(parsed.num_nodes, original.num_nodes);
  EXPECT_EQ(parsed.name, original.name);
  ASSERT_EQ(parsed.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < parsed.jobs.size(); ++i) {
    const auto& a = original.jobs[i];
    const auto& b = parsed.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.project, b.project);
    EXPECT_EQ(a.klass, b.klass);
    EXPECT_EQ(a.notice, b.notice);
    EXPECT_EQ(a.submit_time, b.submit_time);
    EXPECT_EQ(a.notice_time, b.notice_time);
    EXPECT_EQ(a.predicted_arrival, b.predicted_arrival);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.min_size, b.min_size);
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.setup_time, b.setup_time);
  }
  EXPECT_EQ(parsed.Validate(), "");
}

TEST(HswfTest, NeverSerializesAsMinusOne) {
  Trace trace = SampleTrace();
  std::stringstream buffer;
  WriteHswf(trace, buffer);
  const Trace parsed = ReadHswf(buffer);
  EXPECT_EQ(parsed.jobs[0].notice_time, kNever);  // rigid job: no notice
}

TEST(HswfTest, BadLineThrowsWithLineNumber) {
  std::stringstream buffer("; MaxNodes: 10\n1 2 garbage\n");
  try {
    ReadHswf(buffer);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(HswfTest, BadClassThrows) {
  std::stringstream buffer("; MaxNodes: 10\n0 0 7 0 0 -1 -1 4 4 60 60 0\n");
  EXPECT_THROW(ReadHswf(buffer), std::runtime_error);
}

TEST(SwfImportTest, ParsesStandardFields) {
  // job submit wait run used_procs cpu mem req_procs req_time req_mem status
  // uid gid app queue partition prev think
  std::stringstream swf(
      "; MaxNodes: 100\n"
      "1 1000 5 3600 64 -1 -1 64 7200 -1 1 10 20 -1 1 -1 -1 -1\n"
      "2 2000 5 1800 -1 -1 -1 32 3600 -1 1 11 21 -1 1 -1 -1 -1\n");
  const Trace trace = ImportSwf(swf);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.num_nodes, 100);
  EXPECT_EQ(trace.jobs[0].submit_time, 1000);
  EXPECT_EQ(trace.jobs[0].size, 64);
  EXPECT_EQ(trace.jobs[0].compute_time, 3600);
  EXPECT_EQ(trace.jobs[0].estimate, 7200);
  EXPECT_EQ(trace.jobs[0].klass, JobClass::kRigid);
  EXPECT_EQ(trace.jobs[0].project, 20);  // gid used as project
  EXPECT_EQ(trace.jobs[1].size, 32);
}

TEST(SwfImportTest, SkipsInvalidJobs) {
  std::stringstream swf(
      "1 1000 5 -1 64 -1 -1 64 7200 -1 1 10 20 -1 1 -1 -1 -1\n"   // no runtime
      "2 2000 5 1800 0 -1 -1 0 3600 -1 1 11 21 -1 1 -1 -1 -1\n"   // no procs
      "3 3000 5 1800 16 -1 -1 16 3600 -1 1 11 21 -1 1 -1 -1 -1\n");
  const Trace trace = ImportSwf(swf, 64);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].size, 16);
}

TEST(SwfImportTest, EstimateNeverBelowRuntime) {
  std::stringstream swf("1 0 0 3600 16 -1 -1 16 60 -1 1 1 1 -1 1 -1 -1 -1\n");
  const Trace trace = ImportSwf(swf, 64);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_GE(trace.jobs[0].estimate, trace.jobs[0].compute_time);
}

TEST(HswfFileTest, FileRoundTrip) {
  const Trace original = SampleTrace();
  const std::string path = ::testing::TempDir() + "/hswf_roundtrip.hswf";
  WriteHswfFile(original, path);
  const Trace parsed = ReadHswfFile(path);
  EXPECT_EQ(parsed.jobs.size(), original.jobs.size());
  EXPECT_EQ(parsed.num_nodes, original.num_nodes);
}

TEST(HswfFileTest, MissingFileThrows) {
  EXPECT_THROW(ReadHswfFile("/nonexistent/path/file.hswf"), std::runtime_error);
}

}  // namespace
}  // namespace hs
