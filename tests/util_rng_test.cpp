#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace hs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng root1(7), root2(7);
  Rng fork_a1 = root1.Fork("arrivals");
  Rng fork_a2 = root2.Fork("arrivals");
  EXPECT_EQ(fork_a1.UniformInt(0, 1 << 30), fork_a2.UniformInt(0, 1 << 30));

  // Different tags produce different streams.
  Rng root3(7);
  Rng fork_b = root3.Fork("sizes");
  Rng root4(7);
  Rng fork_a3 = root4.Fork("arrivals");
  EXPECT_NE(fork_b.UniformInt(0, 1 << 30), fork_a3.UniformInt(0, 1 << 30));
}

TEST(RngTest, RepeatedForksWithSameTagDiffer) {
  Rng root(9);
  Rng f1 = root.Fork("x");
  Rng f2 = root.Fork("x");
  EXPECT_NE(f1.UniformInt(0, 1 << 30), f2.UniformInt(0, 1 << 30));
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformInHalfOpenRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(19);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(50, 1.2)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  for (const auto& [k, v] : counts) EXPECT_LT(k, 50u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalAllZeroThrows) {
  Rng rng(29);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, HashTagStable) {
  EXPECT_EQ(HashTag("abc"), HashTag("abc"));
  EXPECT_NE(HashTag("abc"), HashTag("abd"));
}

}  // namespace
}  // namespace hs
