// Advance-notice mechanisms: CUA collection, CUP preparation, reservation
// timeout, and backfilling on reserved nodes (§III-B1, §III-B4).
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

Mechanism CuaPaa() { return {NoticePolicy::kCua, ArrivalPolicy::kPaa}; }
Mechanism CupPaa() { return {NoticePolicy::kCup, ArrivalPolicy::kPaa}; }
Mechanism CupSpaa() { return {NoticePolicy::kCup, ArrivalPolicy::kSpaa}; }

TEST(CuaTest, ReservesFreeNodesAtNotice) {
  TraceBuilder builder(64);
  builder.AddOnDemand(2000, 32, 500, 0, 600, NoticeClass::kAccurate,
                      /*notice=*/1000, /*predicted=*/2000);
  HybridHarness h(std::move(builder).Build(), TestConfig(CuaPaa()));
  h.Run(1000);
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(0), 32);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(CuaTest, CollectsReleasedNodesUntilArrival) {
  TraceBuilder builder(64);
  // Machine full at notice time; a job releases 40 nodes before arrival.
  builder.AddRigid(0, 40, 1500, 0, 1500);               // ends at 1500
  builder.AddRigid(0, 24, 50000, 0, 100000);            // keeps running
  builder.AddOnDemand(2000, 32, 500, 0, 600, NoticeClass::kAccurate, 1000, 2000);
  HybridHarness h(std::move(builder).Build(), TestConfig(CuaPaa()));
  h.Run(1600);
  // The release at t=1500 routed into the reservation.
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(2), 32);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  EXPECT_EQ(r.preemptions, 0u);  // CUA never preempts
}

TEST(CuaTest, EarliestNoticeWinsCompetition) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 1500, 0, 1500);  // releases everything at 1500
  builder.AddOnDemand(2400, 40, 500, 0, 600, NoticeClass::kAccurate, 1100, 2400);
  builder.AddOnDemand(2500, 40, 500, 0, 600, NoticeClass::kAccurate, 1200, 2500);
  HybridHarness h(std::move(builder).Build(), TestConfig(CuaPaa()));
  h.Run(1600);
  // Job 1 (notice at 1100) outranks job 2 (notice at 1200): it gets its full
  // 40 nodes; job 2 gets the remaining 24.
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(1), 40);
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(2), 24);
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 3u);
}

TEST(CuaTest, ReservationTimeoutReleasesNodes) {
  HybridConfig config = TestConfig(CuaPaa());
  TraceBuilder builder(64);
  // Late arrival 25 min after prediction: beyond the 10-minute timeout.
  const SimTime predicted = 2000;
  const SimTime actual = predicted + 25 * kMinute;
  builder.AddRigid(0, 40, 90000, 0, 100000);  // fills the machine partially
  builder.AddOnDemand(actual, 24, 500, 0, 600, NoticeClass::kLate, 1000, predicted);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(predicted);
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(1), 24);
  h.Run(predicted + 11 * kMinute);
  // Timed out: nodes released back to the pool.
  EXPECT_EQ(h.sched_.engine().cluster().ReservedCount(1), 0);
  EXPECT_FALSE(h.sched_.reservations().Has(1));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  // The job still starts instantly at its (late) arrival: 24 free nodes.
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(CuaTest, EarlyArrivalUsesArrivalPolicyForDeficit) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 50000, 100, 100000);
  // Early arrival: notice at 1000 predicts 2800 but arrives at 1500.
  builder.AddOnDemand(1500, 32, 500, 0, 600, NoticeClass::kEarly, 1000, 2800);
  HybridHarness h(std::move(builder).Build(), TestConfig(CuaPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_GE(r.preemptions, 1u);  // PAA had to preempt at arrival
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
}

TEST(CupTest, PreemptsRigidRightAfterCheckpoint) {
  HybridConfig config = TestConfig(CupPaa());
  // Force a short checkpoint interval so a dump completes before the
  // predicted arrival.
  config.engine.checkpoint.node_mtbf = 30 * kDay;
  config.engine.checkpoint.min_interval = 10 * kMinute;
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 10 * kHour, 100, 20 * kHour);
  const SimTime notice = 2 * kHour;
  const SimTime predicted = notice + 30 * kMinute;
  builder.AddOnDemand(predicted, 32, 500, 0, 600, NoticeClass::kAccurate, notice,
                      predicted);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_GE(r.preemptions, 1u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  // The victim was preempted right after a completed dump: zero lost work.
  EXPECT_DOUBLE_EQ(r.lost_node_hours, 0.0);
}

TEST(CupTest, DrainsMalleableAheadOfPredictedArrival) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 50000, 100, 100000);
  const SimTime notice = 5000;
  const SimTime predicted = notice + 1800;
  builder.AddOnDemand(predicted, 32, 500, 0, 600, NoticeClass::kAccurate, notice,
                      predicted);
  HybridHarness h(std::move(builder).Build(), TestConfig(CupSpaa()));
  h.Run(predicted);
  // The drain was scheduled so its warning expired by the predicted arrival:
  // the on-demand job starts at its arrival with zero delay.
  EXPECT_TRUE(h.sched_.engine().IsRunning(1));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(CupTest, CountsUpcomingReleasesInsteadOfPreempting) {
  TraceBuilder builder(64);
  // This job's estimate ends before the predicted arrival: CUP must count
  // it and preempt nothing.
  builder.AddRigid(0, 40, 2000, 0, 2500);
  builder.AddRigid(0, 24, 50000, 0, 100000);
  const SimTime notice = 1000;
  const SimTime predicted = notice + 1800;  // 2800 > 2500
  builder.AddOnDemand(predicted, 32, 500, 0, 600, NoticeClass::kAccurate, notice,
                      predicted);
  HybridHarness h(std::move(builder).Build(), TestConfig(CupPaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(CupTest, EarlyArrivalCancelsOutstandingPlans) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 50000, 100, 100000);
  // Early arrival long before the predicted time; the planned drain (at
  // predicted - 120 s) must never fire a second preemption.
  builder.AddOnDemand(1500, 32, 500, 0, 600, NoticeClass::kEarly, 1000, 2800);
  HybridHarness h(std::move(builder).Build(), TestConfig(CupSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  // Exactly one shrink/drain served the job; the stale plan was discarded.
  EXPECT_LE(r.preemptions + r.shrinks, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
}

TEST(BackfillOnReservedTest, TenantRunsAndSurvivesWhenItFits) {
  HybridConfig config = TestConfig(CuaPaa());
  config.backfill_on_reserved = true;
  TraceBuilder builder(64);
  builder.AddRigid(0, 40, 90000, 0, 100000);  // background load
  // Notice far ahead: reservation holds 24 nodes for a long window.
  const SimTime notice = 1000;
  const SimTime predicted = notice + 30 * kMinute;
  // Short job that fits entirely inside the reservation window.
  builder.AddRigid(1200, 16, 300, 0, 400);
  builder.AddOnDemand(predicted, 24, 500, 0, 600, NoticeClass::kAccurate, notice,
                      predicted);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(1300);
  // The short job runs as a tenant on reserved nodes.
  EXPECT_TRUE(h.sched_.engine().IsRunning(1));
  EXPECT_TRUE(h.sched_.engine().Running(1)->is_tenant);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_EQ(r.preemptions, 0u);  // tenant finished before the arrival
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
}

TEST(BackfillOnReservedTest, TenantKilledOnEarlyArrival) {
  HybridConfig config = TestConfig(CuaPaa());
  TraceBuilder builder(64);
  builder.AddRigid(0, 40, 90000, 0, 100000);
  // Long-ish tenant that would finish just before the predicted arrival.
  builder.AddRigid(1200, 16, 1500, 0, 1700);
  // Early arrival: predicted 2800+, actual 1500.
  builder.AddOnDemand(1500, 24, 500, 0, 600, NoticeClass::kEarly, 1000, 2900);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_GE(r.preemptions, 1u);  // the tenant was killed at arrival
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 1.0);
}

TEST(BackfillOnReservedTest, DisabledFlagKeepsReservedIdle) {
  HybridConfig config = TestConfig(CuaPaa());
  config.backfill_on_reserved = false;
  TraceBuilder builder(64);
  builder.AddRigid(0, 40, 90000, 0, 100000);
  builder.AddRigid(1200, 16, 300, 0, 400);
  const SimTime predicted = 1000 + 30 * kMinute;
  builder.AddOnDemand(predicted, 24, 500, 0, 600, NoticeClass::kAccurate, 1000,
                      predicted);
  HybridHarness h(std::move(builder).Build(), config);
  h.Run(1300);
  // Without tenant placement the short job cannot start (only reserved
  // nodes are idle).
  EXPECT_TRUE(h.sched_.engine().IsWaiting(1));
  h.Run();
  EXPECT_EQ(h.Finalize().jobs_completed, 3u);
}

}  // namespace
}  // namespace hs
