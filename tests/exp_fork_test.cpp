// Property tests for the SimulationSession copyability contract (the
// what-if enabler): fork a mid-flight session and the fork must be a
// perfect replica — advancing original and fork through the identical
// remaining event stream yields byte-identical metrics rows, identical
// event counts, and a cluster that passes CheckInvariants() on both sides;
// and advancing one side must never perturb the other.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "exp/session.h"
#include "exp/sim_spec.h"
#include "util/time.h"

namespace hs {
namespace {

constexpr SimTime kMidpoint = 3 * kDay + kHour / 2;  // mid-week, off any round mark

/// Every simulation-content field of a SimResult as one exact-format row
/// (doubles at 17 significant digits); wall-clock fields excluded, like the
/// golden fixture.
std::string ResultRow(const SimResult& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
      "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%zu,%zu,%zu,%zu,%zu,%zu,%zu,"
      "%zu,%lld",
      r.avg_turnaround_h, r.rigid_turnaround_h, r.malleable_turnaround_h,
      r.od_turnaround_h, r.avg_wait_h, r.od_instant_rate,
      r.od_instant_rate_strict, r.od_avg_delay_s, r.rigid_preempt_ratio,
      r.malleable_preempt_ratio, r.malleable_shrink_ratio, r.utilization,
      r.useful_utilization, r.allocated_utilization, r.window_utilization,
      r.lost_node_hours, r.setup_node_hours, r.checkpoint_node_hours,
      r.jobs_completed, r.jobs_killed, r.od_jobs, r.preemptions, r.failures,
      r.shrinks, r.expands, r.decisions, static_cast<long long>(r.makespan));
  return buf;
}

SimSpec MidsizeSpec(const std::string& mechanism, std::uint64_t seed) {
  SimSpec spec = SimSpec::Parse(mechanism + "/FCFS/W5/preset=midsize");
  spec.seed = seed;
  return spec;
}

class ForkEquivalenceTest : public ::testing::TestWithParam<const char*> {};

// Fork mid-flight, run both sides to exhaustion: byte-identical rows.
TEST_P(ForkEquivalenceTest, ForkRunsIdenticallyToOriginal) {
  for (const std::uint64_t seed : {1u, 2u}) {
    SimulationSession original(MidsizeSpec(GetParam(), seed));
    original.StepTo(kMidpoint);
    const std::unique_ptr<SimulationSession> fork = original.Fork();

    EXPECT_EQ(fork->now(), original.now());
    EXPECT_EQ(fork->scheduler().engine().cluster().CheckInvariants(), "");
    EXPECT_EQ(original.scheduler().engine().cluster().CheckInvariants(), "");
    // The mid-flight states agree before any further stepping.
    EXPECT_EQ(ResultRow(fork->Finalize()), ResultRow(original.Finalize()));

    const SimResult a = original.Run();
    const SimResult b = fork->Run();
    EXPECT_EQ(ResultRow(a), ResultRow(b)) << GetParam() << " seed=" << seed;
    EXPECT_EQ(original.simulator().events_processed(),
              fork->simulator().events_processed());
    EXPECT_EQ(original.scheduler().engine().cluster().CheckInvariants(), "");
    EXPECT_EQ(fork->scheduler().engine().cluster().CheckInvariants(), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ForkEquivalenceTest,
                         ::testing::Values("baseline", "N&PAA", "CUA&SPAA",
                                           "CUP&SPAA"));

// Advancing the fork to completion must not move the original at all.
TEST(ForkTest, ForkIsIndependentOfOriginal) {
  SimulationSession original(MidsizeSpec("CUP&SPAA", 7));
  original.StepTo(kMidpoint);
  const std::string frozen = ResultRow(original.Finalize());
  const SimTime now_before = original.now();

  const std::unique_ptr<SimulationSession> fork = original.Fork();
  fork->Run();

  EXPECT_EQ(original.now(), now_before);
  EXPECT_EQ(ResultRow(original.Finalize()), frozen);
  EXPECT_EQ(original.scheduler().engine().cluster().CheckInvariants(), "");

  // And the original still finishes exactly like the fork did.
  EXPECT_EQ(ResultRow(original.Run()), ResultRow(fork->Finalize()));
}

// Online sessions: submissions before AND after the fork point, with the
// fork's trace storage deep-copied so post-fork submissions stay private.
TEST(ForkTest, OnlineSessionForksItsTraceStorage) {
  const SimSpec spec = MidsizeSpec("N&SPAA", 11);
  const Trace base = spec.BuildTrace();
  SimulationSession session(spec, base, /*online_headroom=*/8);
  session.StepTo(kDay);

  JobRecord early;
  early.klass = JobClass::kRigid;
  early.size = early.min_size = 64;
  early.submit_time = session.now() + 10 * kMinute;
  early.compute_time = 2 * kHour;
  early.estimate = 2 * kHour;
  const JobId early_id = session.SubmitJob(early);
  EXPECT_EQ(early_id, static_cast<JobId>(base.jobs.size()));

  session.StepTo(2 * kDay);
  const std::unique_ptr<SimulationSession> fork = session.Fork();
  EXPECT_EQ(fork->online_capacity_left(), session.online_capacity_left());

  // A post-fork submission lands in the fork only.
  JobRecord late = early;
  late.submit_time = fork->now() + kHour;
  const JobId late_id = fork->SubmitJob(late);
  EXPECT_EQ(late_id, early_id + 1);
  EXPECT_EQ(session.trace().jobs.size(), base.jobs.size() + 1);
  EXPECT_EQ(fork->trace().jobs.size(), base.jobs.size() + 2);

  // Feeding the original the identical submission keeps them in lockstep.
  const JobId same_id = session.SubmitJob(late);
  EXPECT_EQ(same_id, late_id);
  EXPECT_EQ(ResultRow(session.Run()), ResultRow(fork->Run()));
  EXPECT_EQ(session.scheduler().engine().cluster().CheckInvariants(), "");
  EXPECT_EQ(fork->scheduler().engine().cluster().CheckInvariants(), "");
}

// The guard rails around online submission.
TEST(ForkTest, SubmitValidation) {
  const SimSpec spec = MidsizeSpec("CUP&SPAA", 3);
  const Trace base = spec.BuildTrace();
  SimulationSession session(spec, base, /*online_headroom=*/1);
  session.StepTo(kDay);

  JobRecord job;
  job.klass = JobClass::kRigid;
  job.size = job.min_size = 32;
  job.compute_time = kHour;
  job.estimate = kHour;

  job.submit_time = session.now();  // not strictly future
  EXPECT_THROW(session.SubmitJob(job), std::invalid_argument);
  job.submit_time = session.now() + 1;
  job.size = base.num_nodes + 1;  // larger than the machine
  job.min_size = job.size;
  EXPECT_THROW(session.SubmitJob(job), std::invalid_argument);

  job.size = job.min_size = 32;
  EXPECT_NO_THROW(session.SubmitJob(job));
  // Headroom of 1 is now spent.
  job.submit_time = session.now() + 2;
  EXPECT_THROW(session.SubmitJob(job), std::runtime_error);

  // Plain (shared-trace) sessions refuse online submission outright.
  SimulationSession plain(spec);
  EXPECT_THROW(plain.SubmitJob(job), std::logic_error);
}

// Cancel semantics: pending and waiting jobs cancel (and their submit
// events fire as no-ops); running and completed jobs refuse.
TEST(ForkTest, CancelJobStates) {
  const SimSpec spec = MidsizeSpec("CUP&SPAA", 5);
  const Trace base = spec.BuildTrace();
  SimulationSession session(spec, base, /*online_headroom=*/4);

  // A pending online job, canceled before its submit event fires.
  JobRecord job;
  job.klass = JobClass::kRigid;
  job.size = job.min_size = 32;
  job.submit_time = kDay;
  job.compute_time = kHour;
  job.estimate = kHour;
  const JobId pending = session.SubmitJob(job);
  EXPECT_TRUE(session.CancelJob(pending));
  EXPECT_FALSE(session.CancelJob(pending));  // already canceled

  session.Run(2 * kDay);
  EXPECT_FALSE(session.scheduler().engine().IsWaiting(pending));
  EXPECT_FALSE(session.scheduler().engine().IsRunning(pending));

  // A running trace job refuses; cancels never corrupt the cluster.
  JobId running = kNoJob;
  for (const JobId id : session.scheduler().engine().RunningIds()) {
    running = id;
    break;
  }
  ASSERT_NE(running, kNoJob);
  EXPECT_FALSE(session.CancelJob(running));

  const SimResult result = session.Run();
  EXPECT_EQ(session.scheduler().engine().cluster().CheckInvariants(), "");
  // The canceled job never entered the metrics.
  EXPECT_FALSE(session.collector().Times(pending).has_value());
  EXPECT_GT(result.jobs_completed, 0u);
}

}  // namespace
}  // namespace hs
