// Randomized-operation property test for Cluster: ~10k mixed operations
// (start/finish/release/reserve/expand/unreserve), with CheckInvariants()
// as the oracle after every single step. This is the guard for the
// index-tracked free list: any drift between free_, free_pos_, the
// tombstone counters, and the running/reserved maps surfaces immediately,
// and the whole walk runs under the ASan+UBSan CI job like every test.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "platform/cluster.h"
#include "util/rng.h"

namespace hs {
namespace {

/// Nodes currently startable for a tenant-style StartOn: free or
/// reserved-idle (no running job).
std::vector<int> StartableNodes(const Cluster& c) {
  std::vector<int> nodes;
  for (int n = 0; n < c.num_nodes(); ++n) {
    if (c.running_on(n) == kNoJob) nodes.push_back(n);
  }
  return nodes;
}

std::vector<int> FreeNodes(const Cluster& c) {
  std::vector<int> nodes;
  for (int n = 0; n < c.num_nodes(); ++n) {
    if (c.running_on(n) == kNoJob && c.reserved_for(n) == kNoJob) nodes.push_back(n);
  }
  return nodes;
}

TEST(ClusterPropertyTest, TenThousandRandomOpsKeepInvariants) {
  constexpr int kNodes = 257;  // deliberately not a power of two
  constexpr int kOps = 10000;
  Cluster cluster(kNodes);
  Rng rng(0xC0FFEEULL);

  std::vector<JobId> running;   // jobs with an allocation
  std::vector<JobId> reserved;  // jobs holding a reservation
  JobId next_job = 1;

  const auto pick = [&rng](const std::vector<JobId>& from) {
    return from[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(from.size()) - 1))];
  };
  const auto drop = [](std::vector<JobId>& from, JobId id) {
    from.erase(std::remove(from.begin(), from.end(), id), from.end());
  };

  for (int op = 0; op < kOps; ++op) {
    const int action = static_cast<int>(rng.UniformInt(0, 9));
    switch (action) {
      case 0:  // StartFromFree
      case 1: {
        const int free = cluster.free_count();
        if (free == 0) break;
        const int want = static_cast<int>(rng.UniformInt(1, std::min(free, 32)));
        const JobId job = next_job++;
        const auto nodes = cluster.StartFromFree(job, want);
        ASSERT_EQ(static_cast<int>(nodes.size()), want);
        running.push_back(job);
        break;
      }
      case 2: {  // StartOn specific startable nodes (tenant path)
        auto startable = StartableNodes(cluster);
        if (startable.empty()) break;
        const int want = static_cast<int>(rng.UniformInt(
            1, std::min<std::int64_t>(static_cast<std::int64_t>(startable.size()), 16)));
        // Random subset: shuffle-by-draw from the candidate list.
        std::vector<int> chosen;
        for (int i = 0; i < want; ++i) {
          const auto at = static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(startable.size()) - 1));
          chosen.push_back(startable[at]);
          startable.erase(startable.begin() + static_cast<std::ptrdiff_t>(at));
        }
        const JobId job = next_job++;
        cluster.StartOn(job, chosen);
        running.push_back(job);
        break;
      }
      case 3: {  // Finish
        if (running.empty()) break;
        const JobId job = pick(running);
        cluster.Finish(job);
        drop(running, job);
        break;
      }
      case 4: {  // ReleaseSome (shrink)
        if (running.empty()) break;
        const JobId job = pick(running);
        const int alloc = cluster.AllocCount(job);
        const int count = static_cast<int>(rng.UniformInt(0, alloc));
        cluster.ReleaseSome(job, count);
        if (count == alloc) drop(running, job);
        break;
      }
      case 5: {  // ExpandFromFree
        if (running.empty() || cluster.free_count() == 0) break;
        const JobId job = pick(running);
        const int grow =
            static_cast<int>(rng.UniformInt(1, std::min(cluster.free_count(), 8)));
        cluster.ExpandFromFree(job, grow);
        break;
      }
      case 6: {  // AddNodes on specific free nodes
        if (running.empty()) break;
        const auto free_nodes = FreeNodes(cluster);
        if (free_nodes.empty()) break;
        const JobId job = pick(running);
        std::vector<int> grow = {free_nodes.front()};
        if (free_nodes.size() > 1) grow.push_back(free_nodes.back());
        cluster.AddNodes(job, grow);
        break;
      }
      case 7: {  // ReserveFromFree (fresh od job)
        const JobId od = next_job++;
        const int got =
            cluster.ReserveFromFree(od, static_cast<int>(rng.UniformInt(1, 48)));
        if (got > 0) reserved.push_back(od);
        break;
      }
      case 8: {  // Unreserve
        if (reserved.empty()) break;
        const JobId od = pick(reserved);
        cluster.Unreserve(od);
        drop(reserved, od);
        break;
      }
      case 9: {  // StartOnReservation (reservation -> execution)
        if (reserved.empty()) break;
        const JobId od = pick(reserved);
        const int extra =
            static_cast<int>(rng.UniformInt(0, std::min(cluster.free_count(), 4)));
        const auto nodes = cluster.StartOnReservation(od, extra);
        cluster.Unreserve(od);  // drop any tenant-occupied remainder
        drop(reserved, od);
        if (!nodes.empty()) running.push_back(od);
        break;
      }
    }
    ASSERT_EQ(cluster.CheckInvariants(), "") << "after op " << op;
  }

  // Drain everything; the cluster must return to fully free.
  for (const JobId job : running) cluster.Finish(job);
  for (const JobId od : reserved) cluster.Unreserve(od);
  ASSERT_EQ(cluster.CheckInvariants(), "");
  EXPECT_EQ(cluster.free_count(), kNodes);
  EXPECT_EQ(cluster.busy_count(), 0);
  EXPECT_EQ(cluster.reserved_idle_count(), 0);
}

TEST(ClusterPropertyTest, PopOrderSurvivesTombstoneCompaction) {
  // Remove-by-id must not perturb the LIFO hand-out order of the remaining
  // free nodes (the bit-stability contract): force heavy tombstoning via
  // StartOn/Finish cycles, then check hand-out still matches a shadow model.
  constexpr int kNodes = 64;
  Cluster cluster(kNodes);
  std::vector<int> model;  // shadow free stack, erase-based semantics
  for (int n = kNodes - 1; n >= 0; --n) model.push_back(n);

  JobId next_job = 1;
  Rng rng(0x5EEDULL);
  for (int round = 0; round < 200; ++round) {
    // Tenant-start three specific free nodes (tombstones in the free list).
    std::vector<int> chosen;
    for (int i = 0; i < 3 && !model.empty(); ++i) {
      const auto at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(model.size()) - 1));
      chosen.push_back(model[at]);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(at));
    }
    const JobId tenant = next_job++;
    cluster.StartOn(tenant, chosen);
    // Pop two through the public hand-out path and compare to the model.
    const int take = std::min<int>(2, static_cast<int>(model.size()));
    const JobId popper = next_job++;
    const auto got = cluster.StartFromFree(popper, take);
    for (int i = 0; i < take; ++i) {
      ASSERT_EQ(got[static_cast<std::size_t>(i)], model.back()) << "round " << round;
      model.pop_back();
    }
    // Finish both; released nodes return to the free stack in release order.
    for (const int node : cluster.NodesViewOf(popper)) model.push_back(node);
    cluster.Finish(popper);
    for (const int node : cluster.NodesViewOf(tenant)) model.push_back(node);
    cluster.Finish(tenant);
    ASSERT_EQ(cluster.CheckInvariants(), "") << "round " << round;
  }
}

}  // namespace
}  // namespace hs
