// Registry behaviour: built-in lookups, alias/case canonicalization, and
// registration of custom policies / mechanisms / scenario presets that then
// become addressable from SimSpec strings.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/arrival.h"
#include "core/mechanism.h"
#include "core/mechanism_context.h"
#include "core/mechanism_strategy.h"
#include "exp/session.h"
#include "exp/sim_spec.h"
#include "sched/policy.h"

namespace hs {
namespace {

TEST(RegistryTest, BuiltInPoliciesAreRegistered) {
  const auto names = PolicyNames();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names[0], "FCFS");
  for (const std::string& name : names) {
    const auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_STRNE(policy->name(), "");
  }
}

TEST(RegistryTest, LookupIsCaseInsensitiveAndCanonicalizing) {
  EXPECT_NE(MakePolicy("fcfs"), nullptr);
  EXPECT_EQ(PolicyRegistry().Canonical("wfp3"), "WFP3");
  EXPECT_EQ(CanonicalMechanismName("fcfs/easy"), "baseline");
  EXPECT_EQ(CanonicalMechanismName("cua&spaa"), "CUA&SPAA");
  EXPECT_EQ(ScenarioRegistry().Canonical("TINY"), "tiny");
}

TEST(RegistryTest, UnknownNamesThrowWithKnownList) {
  try {
    MakePolicy("NOPOLICY");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NOPOLICY"), std::string::npos);
    EXPECT_NE(what.find("FCFS"), std::string::npos);
  }
}

TEST(RegistryTest, ParseMechanismNamesTheOffendingToken) {
  try {
    ParseMechanism("XXX&PAA");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
  try {
    ParseMechanism("CUA&XXX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
  try {
    // Lowercase notice token is valid spelling; the arrival token is the
    // offending one and must be the one named.
    ParseMechanism("cua&XXX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
}

/// A custom ordering policy: most restarts first (a "victim compensation"
/// rule no built-in provides).
class MostRestartsFirst final : public OrderingPolicy {
 public:
  const char* name() const override { return "MostRestartsFirst"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return -static_cast<double>(job.restarts);
  }
};

TEST(RegistryTest, CustomPolicyRegistersAndRunsThroughASpec) {
  if (!PolicyRegistry().Contains("MostRestartsFirst")) {
    RegisterPolicy("MostRestartsFirst",
                   [] { return std::make_unique<MostRestartsFirst>(); },
                   {"mrf"});
  }
  EXPECT_EQ(PolicyRegistry().Canonical("mrf"), "MostRestartsFirst");

  // Addressable from a spec string, end to end.
  const SimSpec spec = SimSpec::Parse("CUA&SPAA/mrf/W5/preset=tiny/seed=3");
  EXPECT_EQ(spec.policy, "MostRestartsFirst");
  const SimResult result = SimulationSession(spec).Run();
  EXPECT_GT(result.jobs_completed, 0u);
}

TEST(RegistryTest, CustomMechanismAliasRegisters) {
  if (!MechanismRegistry().Contains("notice-only")) {
    RegisterMechanism("notice-only",
                      Mechanism{NoticePolicy::kCua, ArrivalPolicy::kQueue});
  }
  const Mechanism m = ParseMechanism("notice-only");
  EXPECT_EQ(m.notice, NoticePolicy::kCua);
  EXPECT_EQ(m.arrival, ArrivalPolicy::kQueue);
  EXPECT_EQ(CanonicalMechanismName(ToString(m)), "notice-only");  // round-trips
}

/// An arrival strategy no enum pair can express: shrink malleable jobs as
/// far as their supply allows and never kill anything.
class ShrinkOnlyArrival final : public ArrivalStrategy {
 public:
  const char* name() const override { return "SHRINK-ONLY"; }
  void OnArrival(MechanismContext& ctx, JobId od, SimTime now) override {
    int deficit = ctx.ReservationDeficit(od) - ctx.PendingDrainNodes(od);
    if (deficit <= 0) return;
    for (const auto& [id, cap] : ListShrinkable(ctx)) {
      if (deficit <= 0) break;
      const int take = std::min(cap, deficit);
      ctx.ShrinkBy(id, take, now);
      ctx.RecordLease(od, id, take, LeaseKind::kShrunk);
      deficit -= take;
    }
    ctx.GiveTo(od);
  }
};

TEST(RegistryTest, BehavioralMechanismRegistersAndRunsThroughASpec) {
  if (!MechanismRegistry().Contains("CUA&SHRINK-ONLY")) {
    MechanismDef def;
    def.handle = Mechanism{NoticePolicy::kCua, ArrivalPolicy::kSpaa};
    def.uses_notices = true;
    def.summary = "CUA collection with a never-preempt shrink-only arrival";
    def.make_arrival = [] { return std::make_unique<ShrinkOnlyArrival>(); };
    RegisterMechanism("CUA&SHRINK-ONLY", def);
  }
  const Mechanism m = ParseMechanism("cua&shrink-only");
  EXPECT_EQ(m.custom, "CUA&SHRINK-ONLY");
  EXPECT_FALSE(m.is_baseline());
  EXPECT_TRUE(m.uses_notices());

  const MechanismRuntime rt = MakeMechanismRuntime(m);
  EXPECT_STREQ(rt.notice->name(), "CUA");       // derived from the handle enums
  EXPECT_STREQ(rt.arrival->name(), "SHRINK-ONLY");  // the registered factory

  // Addressable from a spec string, end to end — and (with reserved-node
  // backfill off, so no tenant kills either) it never preempts anything.
  const SimResult result =
      RunSpec("CUA&SHRINK-ONLY/FCFS/W5/preset=tiny/seed=3/backfill=0");
  EXPECT_GT(result.jobs_completed, 0u);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(RegistryTest, CustomScenarioPresetRegisters) {
  if (!ScenarioRegistry().Contains("micro")) {
    RegisterScenarioPreset("micro", [](int weeks, const std::string& mix) {
      ScenarioConfig config = MakePaperScenario(weeks, mix);
      config.theta.num_nodes = 256;
      config.theta.projects.max_job_size = 256;
      config.theta.projects.num_projects = 8;
      return config;
    });
  }
  const SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/preset=micro");
  EXPECT_EQ(spec.BuildScenario().theta.num_nodes, 256);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  EXPECT_THROW(RegisterPolicy("FCFS", [] { return MakePolicy("SJF"); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace hs