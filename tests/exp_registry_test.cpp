// Registry behaviour: built-in lookups, alias/case canonicalization, and
// registration of custom policies / mechanisms / scenario presets that then
// become addressable from SimSpec strings.
#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "exp/session.h"
#include "exp/sim_spec.h"
#include "sched/policy.h"

namespace hs {
namespace {

TEST(RegistryTest, BuiltInPoliciesAreRegistered) {
  const auto names = PolicyNames();
  ASSERT_GE(names.size(), 6u);
  EXPECT_EQ(names[0], "FCFS");
  for (const std::string& name : names) {
    const auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_STRNE(policy->name(), "");
  }
}

TEST(RegistryTest, LookupIsCaseInsensitiveAndCanonicalizing) {
  EXPECT_NE(MakePolicy("fcfs"), nullptr);
  EXPECT_EQ(PolicyRegistry().Canonical("wfp3"), "WFP3");
  EXPECT_EQ(CanonicalMechanismName("fcfs/easy"), "baseline");
  EXPECT_EQ(CanonicalMechanismName("cua&spaa"), "CUA&SPAA");
  EXPECT_EQ(ScenarioRegistry().Canonical("TINY"), "tiny");
}

TEST(RegistryTest, UnknownNamesThrowWithKnownList) {
  try {
    MakePolicy("NOPOLICY");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NOPOLICY"), std::string::npos);
    EXPECT_NE(what.find("FCFS"), std::string::npos);
  }
}

TEST(RegistryTest, ParseMechanismNamesTheOffendingToken) {
  try {
    ParseMechanism("XXX&PAA");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
  try {
    ParseMechanism("CUA&XXX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
  try {
    // Lowercase notice token is valid spelling; the arrival token is the
    // offending one and must be the one named.
    ParseMechanism("cua&XXX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'XXX'"), std::string::npos);
  }
}

/// A custom ordering policy: most restarts first (a "victim compensation"
/// rule no built-in provides).
class MostRestartsFirst final : public OrderingPolicy {
 public:
  const char* name() const override { return "MostRestartsFirst"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return -static_cast<double>(job.restarts);
  }
};

TEST(RegistryTest, CustomPolicyRegistersAndRunsThroughASpec) {
  if (!PolicyRegistry().Contains("MostRestartsFirst")) {
    RegisterPolicy("MostRestartsFirst",
                   [] { return std::make_unique<MostRestartsFirst>(); },
                   {"mrf"});
  }
  EXPECT_EQ(PolicyRegistry().Canonical("mrf"), "MostRestartsFirst");

  // Addressable from a spec string, end to end.
  const SimSpec spec = SimSpec::Parse("CUA&SPAA/mrf/W5/preset=tiny/seed=3");
  EXPECT_EQ(spec.policy, "MostRestartsFirst");
  const SimResult result = SimulationSession(spec).Run();
  EXPECT_GT(result.jobs_completed, 0u);
}

TEST(RegistryTest, CustomMechanismAliasRegisters) {
  if (!MechanismRegistry().Contains("notice-only")) {
    RegisterMechanism("notice-only",
                      Mechanism{NoticePolicy::kCua, ArrivalPolicy::kQueue});
  }
  const Mechanism m = ParseMechanism("notice-only");
  EXPECT_EQ(m.notice, NoticePolicy::kCua);
  EXPECT_EQ(m.arrival, ArrivalPolicy::kQueue);
}

TEST(RegistryTest, CustomScenarioPresetRegisters) {
  if (!ScenarioRegistry().Contains("micro")) {
    RegisterScenarioPreset("micro", [](int weeks, const std::string& mix) {
      ScenarioConfig config = MakePaperScenario(weeks, mix);
      config.theta.num_nodes = 256;
      config.theta.projects.max_job_size = 256;
      config.theta.projects.num_projects = 8;
      return config;
    });
  }
  const SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/preset=micro");
  EXPECT_EQ(spec.BuildScenario().theta.num_nodes, 256);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  EXPECT_THROW(RegisterPolicy("FCFS", [] { return MakePolicy("SJF"); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace hs