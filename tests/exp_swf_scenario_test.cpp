// The "swf" scenario preset: replaying a real-trace SWF file from a
// SimSpec, with the path carried by the `swf=` override (escaped %2F inside
// one-string specs), horizon truncation, and strict validation when the
// file is missing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "exp/session.h"
#include "exp/sim_spec.h"

namespace hs {
namespace {

class SwfScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "swf_scenario_test.swf";
    std::ofstream out(path_);
    out << "; MaxNodes: 96\n";
    // job submit wait run used avg_cpu mem req_procs req_time mem_req
    // status uid gid app queue partition preceding think
    out << "1 0 0 3600 32 -1 -1 32 4000 -1 1 1 1 -1 -1 -1 -1 -1\n";
    out << "2 600 0 1800 16 -1 -1 16 2000 -1 1 1 2 -1 -1 -1 -1 -1\n";
    out << "3 1200 0 7200 48 -1 -1 48 8000 -1 1 1 2 -1 -1 -1 -1 -1\n";
    out << "4 2000 0 900 8 -1 -1 8 1000 -1 1 1 3 -1 -1 -1 -1 -1\n";
    // Beyond a 1-week horizon from the first submit: truncated away.
    out << "5 700000 0 900 8 -1 -1 8 1000 -1 1 1 3 -1 -1 -1 -1 -1\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(SwfScenarioTest, PresetWithoutPathFailsValidation) {
  SimSpec spec;
  spec.preset = "swf";
  const std::string error = spec.Validate();
  EXPECT_NE(error.find("swf"), std::string::npos) << error;
  EXPECT_THROW(spec.BuildScenario(), std::invalid_argument);
}

TEST_F(SwfScenarioTest, MissingFileFailsValidation) {
  SimSpec spec;
  spec.preset = "swf";
  spec.SetOverride("swf", "/no/such/file.swf");
  EXPECT_NE(spec.Validate().find("/no/such/file.swf"), std::string::npos);
}

TEST_F(SwfScenarioTest, ReplaysTheFileWithTypesAndNotices) {
  SimSpec spec;
  spec.preset = "swf";
  spec.SetOverride("swf", path_);
  ASSERT_EQ(spec.Validate(), "");
  const Trace trace = spec.BuildTrace();
  EXPECT_EQ(trace.num_nodes, 96);       // from the file header
  ASSERT_EQ(trace.jobs.size(), 4u);     // job 5 is beyond the 1-week horizon
  EXPECT_EQ(trace.Validate(), "");
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(trace.jobs[i].id, static_cast<JobId>(i));  // ids stay dense
  }
  EXPECT_NE(trace.name.find("swf"), std::string::npos);
  // Deterministic in the seed.
  const Trace again = spec.BuildTrace();
  ASSERT_EQ(again.jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(again.jobs[i].klass, trace.jobs[i].klass);
    EXPECT_EQ(again.jobs[i].submit_time, trace.jobs[i].submit_time);
  }
}

TEST_F(SwfScenarioTest, NodesOverrideBeatsTheHeader) {
  SimSpec spec;
  spec.preset = "swf";
  spec.SetOverride("swf", path_);
  spec.SetOverride("nodes", "128");
  EXPECT_EQ(spec.BuildTrace().num_nodes, 128);
}

TEST_F(SwfScenarioTest, SpecStringRoundTripsWithEscapedPath) {
  SimSpec spec;
  spec.preset = "swf";
  spec.seed = 5;
  spec.SetOverride("swf", path_);
  const std::string text = spec.ToString();
  // The path's slashes are escaped so the spec stays '/'-separated.
  EXPECT_EQ(text.find(path_), std::string::npos);
  EXPECT_NE(text.find("%2F"), std::string::npos);
  const SimSpec reparsed = SimSpec::Parse(text);
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.overrides.at("swf"), path_);  // stored decoded
}

TEST_F(SwfScenarioTest, CliFlagsCarryThePathVerbatim) {
  const std::string flag = "--swf=" + path_;
  const char* argv[] = {"prog", "--spec=baseline/FCFS/W5/preset=swf", flag.c_str()};
  const CliArgs args(3, argv);
  const SimSpec spec = SimSpec::FromCli(args);
  EXPECT_EQ(spec.preset, "swf");
  EXPECT_EQ(spec.overrides.at("swf"), path_);
  EXPECT_EQ(spec.Validate(), "");
}

TEST_F(SwfScenarioTest, RunsEndToEndUnderBaselineAndMechanism) {
  for (const char* mechanism : {"baseline", "CUA&SPAA"}) {
    SimSpec spec;
    spec.mechanism = mechanism;
    spec.preset = "swf";
    spec.SetOverride("swf", path_);
    SimulationSession session(spec);
    const SimResult r = session.Run();
    EXPECT_EQ(r.jobs_completed + r.jobs_killed, 4u) << mechanism;
  }
}

TEST_F(SwfScenarioTest, SharesTheTraceCacheKeyByPath) {
  SimSpec a = SimSpec::Parse("baseline/FCFS/W5/preset=swf");
  a.SetOverride("swf", path_);
  SimSpec b = SimSpec::Parse("CUA&SPAA/SJF/W5/preset=swf");
  b.SetOverride("swf", path_);
  EXPECT_EQ(a.ScenarioKey(), b.ScenarioKey());  // scheduler knobs don't split it
  SimSpec c = a;
  c.SetOverride("nodes", "128");
  EXPECT_NE(a.ScenarioKey(), c.ScenarioKey());
}

}  // namespace
}  // namespace hs
