// Differential guards for the availability profile and the profile-backed
// backfill planner (the "decisions unchanged" contract of the incremental
// scheduling pass):
//
//   1. ~10k random profile mutations (start/finish/kill map to Set/Erase,
//      shrink/expand/drain to Set updates) checked after every step against
//      a naive recompute-from-scratch oracle — the same shape as
//      platform_cluster_property_test.cpp.
//   2. Randomized queues and running sets where PlanBackfill (profile
//      query) must emit byte-identical StartDecisions — and the same
//      blocked head, shadow time, and extra-node window — as the legacy
//      EasyBackfill snapshot walk, overdue (E <= now) clamping and held
//      reservation nodes included.
//   3. The engine-level identity the profile rests on:
//      EstimatedEnd(id, now) == max(availability().EndOf(id), now) across
//      every mutation path that re-syncs a job's step.
#include "sched/availability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "exp/fixtures.h"
#include "sched/backfill.h"
#include "util/rng.h"

namespace hs {
namespace {

// ---------------------------------------------------------------------------
// 1. Profile vs naive oracle.

/// The oracle: a flat copy of the profile's (id -> E, alloc) state, with
/// every query answered by sorting a fresh snapshot — exactly what the
/// legacy pass did per call.
class NaiveProfile {
 public:
  std::map<JobId, std::pair<SimTime, int>> entries;

  std::vector<RunningView> SortedView(SimTime now) const {
    std::vector<RunningView> view;
    view.reserve(entries.size());
    for (const auto& [id, e] : entries) {
      view.push_back({id, e.second, std::max(e.first, now)});
    }
    std::sort(view.begin(), view.end(), [](const RunningView& a, const RunningView& b) {
      if (a.est_end != b.est_end) return a.est_end < b.est_end;
      return a.id < b.id;
    });
    return view;
  }

  std::pair<SimTime, int> EarliestFit(int free_now, int need, SimTime now) const {
    int avail = free_now;
    for (const auto& r : SortedView(now)) {
      avail += r.alloc;
      if (avail >= need) return {r.est_end, avail - need};
    }
    return {kNever, 0};
  }

  SimTime NextEndAfter(SimTime now) const {
    SimTime next = kNever;
    for (const auto& [id, e] : entries) {
      if (e.first > now && e.first < next) next = e.first;
    }
    return next;
  }
};

TEST(AvailabilityProfilePropertyTest, TenThousandRandomOpsMatchNaiveOracle) {
  constexpr int kOps = 10000;
  AvailabilityProfile profile;
  NaiveProfile naive;
  Rng rng(0xA7A11AB1EULL);
  JobId next_job = 1;
  std::vector<JobId> live;

  const auto pick = [&rng](const std::vector<JobId>& from) {
    return from[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(from.size()) - 1))];
  };
  const auto drop = [](std::vector<JobId>& from, JobId id) {
    from.erase(std::remove(from.begin(), from.end(), id), from.end());
  };

  for (int op = 0; op < kOps; ++op) {
    const int action = static_cast<int>(rng.UniformInt(0, 9));
    switch (action) {
      case 0:
      case 1:
      case 2: {  // start: fresh step
        const JobId id = next_job++;
        const SimTime end = rng.UniformInt(0, 5000);
        const int alloc = static_cast<int>(rng.UniformInt(1, 64));
        profile.Set(id, end, alloc);
        naive.entries[id] = {end, alloc};
        live.push_back(id);
        break;
      }
      case 3:
      case 4: {  // finish / kill: step removed
        if (live.empty()) break;
        const JobId id = pick(live);
        profile.Erase(id);
        naive.entries.erase(id);
        drop(live, id);
        break;
      }
      case 5: {  // erase of an absent id is a silent no-op
        const std::uint64_t before = profile.epoch();
        profile.Erase(next_job + 100);
        EXPECT_EQ(profile.epoch(), before);
        break;
      }
      case 6:
      case 7: {  // shrink / expand: alloc changes, bound recomputed
        if (live.empty()) break;
        const JobId id = pick(live);
        const SimTime end = rng.UniformInt(0, 5000);
        const int alloc = static_cast<int>(rng.UniformInt(1, 64));
        profile.Set(id, end, alloc);
        naive.entries[id] = {end, alloc};
        break;
      }
      case 8: {  // drain / cancel-drain: bound moves, alloc stays
        if (live.empty()) break;
        const JobId id = pick(live);
        const int alloc = profile.AllocOf(id);
        const SimTime end = rng.UniformInt(0, 5000);
        profile.Set(id, end, alloc);
        naive.entries[id] = {end, alloc};
        break;
      }
      case 9: {  // identical re-Set must not bump the epoch
        if (live.empty()) break;
        const JobId id = pick(live);
        const std::uint64_t before = profile.epoch();
        profile.Set(id, profile.EndOf(id), profile.AllocOf(id));
        EXPECT_EQ(profile.epoch(), before) << "op " << op;
        break;
      }
    }

    ASSERT_EQ(profile.size(), naive.entries.size()) << "op " << op;
    // Random point lookups.
    if (!live.empty()) {
      const JobId id = pick(live);
      ASSERT_TRUE(profile.Contains(id));
      ASSERT_EQ(profile.EndOf(id), naive.entries.at(id).first) << "op " << op;
      ASSERT_EQ(profile.AllocOf(id), naive.entries.at(id).second) << "op " << op;
    }
    EXPECT_FALSE(profile.Contains(next_job + 100));
    EXPECT_EQ(profile.EndOf(next_job + 100), kNever);
    EXPECT_EQ(profile.AllocOf(next_job + 100), 0);

    // Random queries: `now` deliberately straddles stored bounds so the
    // overdue-clamped prefix is regularly non-empty.
    const SimTime now = rng.UniformInt(0, 5500);
    const int free_now = static_cast<int>(rng.UniformInt(0, 128));
    const int need = static_cast<int>(rng.UniformInt(1, 256));
    ASSERT_EQ(profile.EarliestFit(free_now, need, now),
              naive.EarliestFit(free_now, need, now))
        << "op " << op << " now=" << now << " free=" << free_now << " need=" << need;
    ASSERT_EQ(profile.NextEndAfter(now), naive.NextEndAfter(now)) << "op " << op;

    if (op % 100 == 0) {
      std::vector<RunningView> got;
      profile.AppendSortedView(now, &got);
      const std::vector<RunningView> want = naive.SortedView(now);
      ASSERT_EQ(got.size(), want.size()) << "op " << op;
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].id, want[i].id) << "op " << op << " slot " << i;
        ASSERT_EQ(got[i].alloc, want[i].alloc) << "op " << op << " slot " << i;
        ASSERT_EQ(got[i].est_end, want[i].est_end) << "op " << op << " slot " << i;
      }
    }
  }

  profile.Clear();
  EXPECT_EQ(profile.size(), 0u);
  EXPECT_EQ(profile.EarliestFit(0, 1, 0), (std::pair<SimTime, int>{kNever, 0}));
  EXPECT_EQ(profile.NextEndAfter(0), kNever);
}

// ---------------------------------------------------------------------------
// 2. PlanBackfill vs EasyBackfill over randomized inputs.

/// Owns records/queue storage (the sched_backfill_test fixture shape) plus
/// a held-nodes table, and exposes both callback forms — std::function for
/// the legacy input, BackfillEnv for the planner — backed by the same data.
class DifferentialFixture : public BackfillEnv {
 public:
  WaitingJob* AddRigid(JobId id, int size, SimTime estimate) {
    JobRecord& rec = records_[id];
    rec.id = id;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = estimate;
    rec.estimate = estimate;
    WaitingJob w;
    w.id = id;
    w.record = &rec;
    w.estimate_remaining = estimate;
    w.est_work_remaining = static_cast<std::int64_t>(estimate) * size;
    queue_storage_.push_back(w);
    return &queue_storage_.back();
  }

  WaitingJob* AddMalleable(JobId id, int max, int min, SimTime estimate) {
    WaitingJob* w = AddRigid(id, max, estimate);
    records_[id].klass = JobClass::kMalleable;
    records_[id].min_size = min;
    w->flexible = true;
    return w;
  }

  void Hold(JobId id, int nodes) { held_[id] = nodes; }

  SimTime WallEstimate(const WaitingJob& w, int alloc) const override {
    if (w.record->is_malleable()) return (w.est_work_remaining + alloc - 1) / alloc;
    return w.estimate_remaining;
  }

  int HeldNodes(const WaitingJob& w) const override {
    const auto it = held_.find(w.id);
    return it == held_.end() ? 0 : it->second;
  }

  std::vector<const WaitingJob*> Queue() const {
    std::vector<const WaitingJob*> q;
    for (const auto& w : queue_storage_) q.push_back(&w);
    return q;
  }

  /// The legacy input over the same data: RunningView snapshot with the
  /// engine's clamped est_end = max(E, now).
  BackfillInput MakeLegacyInput(int free, SimTime now,
                                const AvailabilityProfile& avail) const {
    BackfillInput input;
    input.free_nodes = free;
    input.now = now;
    input.queue = Queue();
    avail.AppendSortedView(now, &input.running);
    // The planner's oracle must not depend on snapshot order: shuffle-proof
    // by reversing (EasyBackfill re-sorts internally).
    std::reverse(input.running.begin(), input.running.end());
    input.wall_estimate = [this](const WaitingJob& w, int alloc) {
      return WallEstimate(w, alloc);
    };
    input.held_nodes = [this](const WaitingJob& w) { return HeldNodes(w); };
    return input;
  }

 private:
  std::map<JobId, JobRecord> records_;
  std::deque<WaitingJob> queue_storage_;
  std::map<JobId, int> held_;
};

TEST(AvailabilityBackfillDifferentialTest, ProfilePlanMatchesLegacyOverRandomInputs) {
  constexpr int kTrials = 400;
  Rng rng(0xBADC0DEULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    const SimTime now = rng.UniformInt(0, 2000);
    const int nodes = static_cast<int>(rng.UniformInt(8, 96));

    // Random running set; roughly a quarter of the bounds land at or
    // before `now` to exercise the overdue-clamped prefix.
    AvailabilityProfile avail;
    int busy = 0;
    const int num_running = static_cast<int>(rng.UniformInt(0, 10));
    for (int i = 0; i < num_running && busy < nodes; ++i) {
      const int alloc =
          static_cast<int>(rng.UniformInt(1, std::min(nodes - busy, 24)));
      const SimTime end = rng.Chance(0.25) ? rng.UniformInt(0, now)
                                           : rng.UniformInt(now + 1, now + 3000);
      avail.Set(1000 + i, end, alloc);
      busy += alloc;
    }
    const int free = nodes - busy;

    // Random queue: rigid/malleable mix, occasional held reservation.
    DifferentialFixture fx;
    const int num_waiting = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < num_waiting; ++i) {
      const JobId id = 1 + i;
      const SimTime estimate = rng.UniformInt(1, 4000);
      if (rng.Chance(0.3)) {
        const int max = static_cast<int>(rng.UniformInt(2, 32));
        const int min = static_cast<int>(rng.UniformInt(1, max));
        fx.AddMalleable(id, max, min, estimate);
      } else {
        fx.AddRigid(id, static_cast<int>(rng.UniformInt(1, 48)), estimate);
      }
      if (rng.Chance(0.15)) fx.Hold(id, static_cast<int>(rng.UniformInt(1, 8)));
    }

    const BackfillResult legacy = EasyBackfill(fx.MakeLegacyInput(free, now, avail));
    const BackfillResult plan = PlanBackfill(free, now, avail, fx.Queue(), fx);

    ASSERT_EQ(plan.starts.size(), legacy.starts.size()) << "trial " << trial;
    for (std::size_t i = 0; i < legacy.starts.size(); ++i) {
      ASSERT_EQ(plan.starts[i].job, legacy.starts[i].job) << "trial " << trial;
      ASSERT_EQ(plan.starts[i].alloc, legacy.starts[i].alloc) << "trial " << trial;
    }
    ASSERT_EQ(plan.blocked_head, legacy.blocked_head) << "trial " << trial;
    ASSERT_EQ(plan.shadow_time, legacy.shadow_time) << "trial " << trial;
    ASSERT_EQ(plan.extra_nodes, legacy.extra_nodes) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// 3. Engine identity: EstimatedEnd == max(profile bound, now).

JobRecord Rigid(JobId id, SimTime submit, int size, SimTime compute, SimTime setup,
                SimTime estimate) {
  JobRecord rec;
  rec.id = id;
  rec.klass = JobClass::kRigid;
  rec.submit_time = submit;
  rec.size = size;
  rec.min_size = size;
  rec.compute_time = compute;
  rec.setup_time = setup;
  rec.estimate = estimate;
  return rec;
}

JobRecord Malleable(JobId id, SimTime submit, int max, int min, SimTime compute,
                    SimTime setup, SimTime estimate) {
  JobRecord rec = Rigid(id, submit, max, compute, setup, estimate);
  rec.klass = JobClass::kMalleable;
  rec.min_size = min;
  return rec;
}

void ExpectProfileMatchesRunning(const ExecutionEngine& engine, SimTime now) {
  ASSERT_EQ(engine.availability().size(), engine.running_jobs().size());
  for (const auto& [id, r] : engine.running_jobs()) {
    ASSERT_TRUE(engine.availability().Contains(id)) << "job " << id;
    EXPECT_EQ(engine.availability().AllocOf(id), r.alloc) << "job " << id;
    EXPECT_EQ(engine.EstimatedEnd(id, now),
              std::max(engine.availability().EndOf(id), now))
        << "job " << id;
  }
}

TEST(AvailabilityEngineIdentityTest, ProfileTracksEveryMutationPath) {
  Trace trace;
  trace.num_nodes = 64;
  trace.jobs = {Rigid(0, 0, 8, 1000, 100, 2000),
                Malleable(1, 0, 16, 4, 3000, 0, 4000),
                Rigid(2, 0, 4, 500, 0, 800)};
  EngineConfig config;
  config.checkpoint.node_mtbf = 1000LL * 365 * kDay;
  test::EngineSandbox h(std::move(trace), config);

  for (JobId id = 0; id < 3; ++id) h.engine_.EnqueueFresh(id, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  ASSERT_TRUE(h.engine_.StartWaiting(1, 8, 0));
  ASSERT_TRUE(h.engine_.StartWaiting(2, 4, 0));
  ExpectProfileMatchesRunning(h.engine_, 0);

  // Shrink and expand re-project the malleable bound.
  h.engine_.ShrinkBy(1, 4, 0);
  ExpectProfileMatchesRunning(h.engine_, 0);
  h.engine_.ExpandByFromFree(1, 8, 0);
  ExpectProfileMatchesRunning(h.engine_, 0);

  // Drain (malleable only) pins the bound to the warning deadline; cancel
  // restores the work projection.
  h.engine_.BeginDrain(1, /*od=*/100, 0);
  ExpectProfileMatchesRunning(h.engine_, 0);
  h.engine_.CancelDrain(1);
  ExpectProfileMatchesRunning(h.engine_, 0);

  // Overdue clamp: past the stored bound the estimate floors at `now`.
  const SimTime bound = h.engine_.availability().EndOf(2);
  ASSERT_LT(bound, kNever);
  EXPECT_EQ(h.engine_.EstimatedEnd(2, bound + 50), bound + 50);

  // Removal paths drop the step.
  h.engine_.FinishRunning(2, 0);
  EXPECT_FALSE(h.engine_.availability().Contains(2));
  ExpectProfileMatchesRunning(h.engine_, 0);

  h.sim_.Run();
  EXPECT_EQ(h.engine_.availability().size(), 0u);
}

}  // namespace
}  // namespace hs
