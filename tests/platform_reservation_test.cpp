#include "platform/reservation.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(ReservationManagerTest, OpenGrabsFreeNodes) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  const int got = mgr.Open(7, 10, /*notice=*/100, /*predicted=*/2000);
  EXPECT_EQ(got, 10);
  EXPECT_EQ(mgr.Deficit(7), 0);
  EXPECT_TRUE(mgr.Has(7));
}

TEST(ReservationManagerTest, OpenWithoutGrab) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  const int got = mgr.Open(7, 10, 100, kNever, /*absorbing=*/false, /*grab_free=*/false);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(mgr.Deficit(7), 10);
}

TEST(ReservationManagerTest, DuplicateOpenThrows) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  mgr.Open(7, 4, 100, 2000);
  EXPECT_THROW(mgr.Open(7, 4, 100, 2000), std::runtime_error);
}

TEST(ReservationManagerTest, DeficitTracksShortfall) {
  Cluster cluster(8);
  ReservationManager mgr(cluster);
  cluster.StartFromFree(1, 6);  // only 2 free
  mgr.Open(7, 5, 100, 2000);
  EXPECT_EQ(mgr.Deficit(7), 3);
}

TEST(ReservationManagerTest, AbsorbFromFreeFillsByNoticeOrder) {
  Cluster cluster(8);
  ReservationManager mgr(cluster);
  cluster.StartFromFree(1, 8);  // nothing free
  mgr.Open(20, 4, /*notice=*/200, 3000);
  mgr.Open(10, 4, /*notice=*/100, 3000);
  // Job 1 releases 6 nodes.
  cluster.Finish(1);
  cluster.StartFromFree(2, 2);  // keep 6 free
  mgr.AbsorbFromFree();
  // Earliest notice (od 10) filled first.
  EXPECT_EQ(mgr.Deficit(10), 0);
  EXPECT_EQ(mgr.Deficit(20), 2);
}

TEST(ReservationManagerTest, NonAbsorbingSkippedByAbsorb) {
  Cluster cluster(8);
  ReservationManager mgr(cluster);
  cluster.StartFromFree(1, 8);
  mgr.Open(10, 4, 100, kNever, /*absorbing=*/false, /*grab_free=*/false);
  cluster.Finish(1);
  mgr.AbsorbFromFree();
  EXPECT_EQ(mgr.Deficit(10), 4);
  EXPECT_EQ(cluster.free_count(), 8);
}

TEST(ReservationManagerTest, TopUpOnlyAffectsOneReservation) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  cluster.StartFromFree(1, 16);
  mgr.Open(10, 4, 100, 3000);
  mgr.Open(20, 4, 200, 3000);
  cluster.Finish(1);
  mgr.TopUp(20);
  EXPECT_EQ(mgr.Deficit(20), 0);
  EXPECT_EQ(mgr.Deficit(10), 4);
}

TEST(ReservationManagerTest, CloseReleasesIdleNodes) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  mgr.Open(7, 10, 100, 2000);
  const auto freed = mgr.Close(7);
  EXPECT_EQ(freed.size(), 10u);
  EXPECT_FALSE(mgr.Has(7));
  EXPECT_EQ(cluster.free_count(), 16);
}

TEST(ReservationManagerTest, MarkArrivedSetsFlag) {
  Cluster cluster(16);
  ReservationManager mgr(cluster);
  mgr.Open(7, 4, 100, 2000);
  EXPECT_FALSE(mgr.Find(7)->arrived);
  mgr.MarkArrived(7);
  EXPECT_TRUE(mgr.Find(7)->arrived);
}

TEST(ReservationManagerTest, TotalDeficitSums) {
  Cluster cluster(4);
  ReservationManager mgr(cluster);
  cluster.StartFromFree(1, 4);
  mgr.Open(10, 3, 100, 2000);
  mgr.Open(20, 2, 200, 2000);
  EXPECT_EQ(mgr.TotalDeficit(), 5);
}

TEST(ReservationManagerTest, RouteFreedNodesHonorsNoticeOrder) {
  Cluster cluster(8);
  ReservationManager mgr(cluster);
  const auto nodes = cluster.StartFromFree(1, 8);
  mgr.Open(20, 2, 200, 3000);
  mgr.Open(10, 2, 100, 3000);
  const auto released = cluster.Finish(1);
  const auto leftover = mgr.RouteFreedNodes(released);
  EXPECT_EQ(mgr.Deficit(10), 0);
  EXPECT_EQ(mgr.Deficit(20), 0);
  EXPECT_EQ(leftover.size(), 4u);
}

}  // namespace
}  // namespace hs
