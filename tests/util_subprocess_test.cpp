// Subprocess spawning: exit codes, signals, redirection, exec failures,
// and sibling-binary resolution — the primitives under ShardedRunner.
#include <gtest/gtest.h>

#include "util/file_util.h"
#include "util/subprocess.h"

namespace hs {
namespace {

TEST(SubprocessTest, RunsAndReportsExitZero) {
  const ProcessStatus status = RunProcess({"/bin/true"});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.Describe(), "exit 0");
}

TEST(SubprocessTest, ReportsNonZeroExit) {
  const ProcessStatus status = RunProcess({"/bin/sh", "-c", "exit 3"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.exit_code, 3);
  EXPECT_EQ(status.Describe(), "exit 3");
}

TEST(SubprocessTest, ReportsTerminationSignal) {
  const ProcessStatus status = RunProcess({"/bin/sh", "-c", "kill -9 $$"});
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, 9);
  EXPECT_NE(status.Describe().find("signal 9"), std::string::npos);
}

TEST(SubprocessTest, RedirectsStdoutToFile) {
  const std::string dir = MakeTempDir("hs-subproc-test-");
  const std::string out = dir + "/echo.out";
  const ProcessStatus status = RunProcess({"/bin/echo", "hello", "shard"}, out);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(ReadTextFile(out), "hello shard\n");
  RemoveTreeBestEffort(dir);
}

TEST(SubprocessTest, ExecFailureIsExit127WithStderrNote) {
  const std::string dir = MakeTempDir("hs-subproc-test-");
  const std::string err = dir + "/err.txt";
  const ProcessStatus status = RunProcess({"/nonexistent/bin"}, "", err);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.exit_code, 127);
  EXPECT_NE(status.Describe().find("exec failed"), std::string::npos);
  EXPECT_NE(ReadTextFile(err).find("/nonexistent/bin"), std::string::npos);
  RemoveTreeBestEffort(dir);
}

TEST(SubprocessTest, WaitIsIdempotent) {
  Subprocess child = Subprocess::Spawn({"/bin/sh", "-c", "exit 5"});
  EXPECT_EQ(child.Wait().exit_code, 5);
  EXPECT_EQ(child.Wait().exit_code, 5);  // cached, no double-reap
}

TEST(SubprocessTest, PollReportsRunningThenExited) {
  Subprocess child = Subprocess::Spawn({"/bin/sh", "-c", "sleep 0.2; exit 7"});
  EXPECT_TRUE(child.running());
  EXPECT_FALSE(child.Poll());  // still asleep
  EXPECT_TRUE(child.WaitFor(10.0));
  EXPECT_TRUE(child.Poll());  // cached after reap
  EXPECT_FALSE(child.running());
  EXPECT_EQ(child.Wait().exit_code, 7);
}

TEST(SubprocessTest, WaitForTimesOutAndKillReaps) {
  Subprocess child = Subprocess::Spawn({"/bin/sleep", "30"});
  EXPECT_FALSE(child.WaitFor(0.05));  // deadline elapses, child survives
  EXPECT_TRUE(child.running());
  EXPECT_TRUE(child.Kill());  // SIGKILL
  const ProcessStatus status = child.Wait();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, SIGKILL);
}

TEST(SubprocessTest, KillAfterReapIsRejected) {
  Subprocess child = Subprocess::Spawn({"/bin/true"});
  EXPECT_EQ(child.Wait().exit_code, 0);
  EXPECT_FALSE(child.Kill());  // nothing left to signal
  Subprocess failed = Subprocess::Spawn({});
  EXPECT_TRUE(failed.Poll());  // spawn failure: nothing to wait for
  EXPECT_FALSE(failed.Kill());
  failed.Wait();
}

TEST(SubprocessTest, SelfExeDirIsAbsolute) {
  const std::string dir = SelfExeDir();
  ASSERT_FALSE(dir.empty());
  EXPECT_EQ(dir.front(), '/');
  EXPECT_NE(dir.back(), '/');
}

TEST(SubprocessTest, EmptyArgvFailsCleanly) {
  const ProcessStatus status = RunProcess({});
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.spawned);
  EXPECT_NE(status.Describe().find("spawn failed"), std::string::npos);
}

}  // namespace
}  // namespace hs
