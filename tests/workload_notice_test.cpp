#include "workload/notice_model.h"

#include <gtest/gtest.h>

#include "workload/theta_model.h"
#include "workload/type_assign.h"

namespace hs {
namespace {

Trace MakeLabelledTrace(std::uint64_t seed = 21) {
  ThetaConfig config;
  config.weeks = 3;
  Trace trace = GenerateThetaTrace(config, seed);
  Rng rng(seed);
  AssignJobTypes(trace, {}, rng);
  return trace;
}

TEST(NoticeModelTest, PresetsSumToOne) {
  for (const auto& mix : PaperNoticeMixes()) {
    EXPECT_NEAR(mix.none + mix.accurate + mix.early + mix.late, 1.0, 1e-9) << mix.name;
  }
}

TEST(NoticeModelTest, LookupByName) {
  EXPECT_DOUBLE_EQ(NoticeMixByName("W1").none, 0.70);
  EXPECT_DOUBLE_EQ(NoticeMixByName("W2").accurate, 0.70);
  EXPECT_DOUBLE_EQ(NoticeMixByName("W4").late, 0.70);
  EXPECT_THROW(NoticeMixByName("W9"), std::out_of_range);
}

TEST(NoticeModelTest, AssignedTraceValidates) {
  Trace trace = MakeLabelledTrace();
  Rng rng(5);
  AssignNotices(trace, NoticeMixByName("W5"), {}, rng);
  EXPECT_EQ(trace.Validate(), "");
}

TEST(NoticeModelTest, OnlyOnDemandJobsTouched) {
  Trace trace = MakeLabelledTrace();
  Rng rng(6);
  AssignNotices(trace, NoticeMixByName("W5"), {}, rng);
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) {
      EXPECT_EQ(job.notice, NoticeClass::kNone);
      EXPECT_EQ(job.notice_time, kNever);
    }
  }
}

TEST(NoticeModelTest, LeadTimeWithinConfiguredBand) {
  Trace trace = MakeLabelledTrace();
  NoticeModelConfig config;
  Rng rng(7);
  AssignNotices(trace, NoticeMixByName("W2"), config, rng);
  for (const auto& job : trace.jobs) {
    if (job.is_on_demand() && job.notice != NoticeClass::kNone &&
        job.notice_time > 0) {
      const SimTime lead = job.predicted_arrival - job.notice_time;
      EXPECT_GE(lead, config.lead_lo);
      EXPECT_LE(lead, config.lead_hi);
    }
  }
}

TEST(NoticeModelTest, CategoryConstraintsHold) {
  Trace trace = MakeLabelledTrace();
  NoticeModelConfig config;
  Rng rng(8);
  AssignNotices(trace, NoticeMixByName("W5"), config, rng);
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    switch (job.notice) {
      case NoticeClass::kNone:
        EXPECT_EQ(job.notice_time, kNever);
        break;
      case NoticeClass::kAccurate:
        EXPECT_EQ(job.predicted_arrival, job.submit_time);
        break;
      case NoticeClass::kEarly:
        EXPECT_LE(job.notice_time, job.submit_time);
        EXPECT_GE(job.predicted_arrival, job.submit_time);
        break;
      case NoticeClass::kLate:
        EXPECT_LE(job.predicted_arrival, job.submit_time);
        EXPECT_LE(job.submit_time - job.predicted_arrival, config.late_window);
        break;
    }
  }
}

TEST(NoticeModelTest, MixSharesApproximatelyRespected) {
  Trace trace = MakeLabelledTrace(99);
  Rng rng(9);
  AssignNotices(trace, NoticeMixByName("W1"), {}, rng);
  std::size_t none = 0, total = 0;
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    ++total;
    none += (job.notice == NoticeClass::kNone) ? 1 : 0;
  }
  if (total > 50) {
    EXPECT_NEAR(static_cast<double>(none) / total, 0.70, 0.15);
  }
}

}  // namespace
}  // namespace hs
