#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace hs {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10;
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0); }

TEST(ConfidenceTest, ZeroForSmallSamples) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth95(s), 0.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth95(s), 0.0);
}

TEST(ConfidenceTest, ShrinksWithSampleSize) {
  RunningStats small, big;
  for (int i = 0; i < 10; ++i) small.Add(i % 2);
  for (int i = 0; i < 1000; ++i) big.Add(i % 2);
  EXPECT_GT(ConfidenceHalfWidth95(small), ConfidenceHalfWidth95(big));
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(P2QuantileTest, EmptyIsZero) {
  const P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2QuantileTest, ExactUpToFiveObservations) {
  P2Quantile median(0.5);
  std::vector<double> sample;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    median.Add(x);
    sample.push_back(x);
    EXPECT_DOUBLE_EQ(median.value(), Percentile(sample, 0.5))
        << "after " << sample.size() << " observations";
  }
  EXPECT_EQ(median.count(), 5u);
}

TEST(P2QuantileTest, TracksBatchPercentilesOnLargeStreams) {
  Rng rng(123);
  for (const double target : {0.5, 0.9, 0.99}) {
    P2Quantile estimator(target);
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.LogNormal(0.0, 1.0);
      estimator.Add(x);
      sample.push_back(x);
    }
    const double exact = Percentile(sample, target);
    EXPECT_NEAR(estimator.value(), exact, 0.05 * exact) << "q=" << target;
  }
}

TEST(P2QuantileTest, MonotoneStreamsStayOrdered) {
  P2Quantile p50(0.5), p90(0.9);
  for (int i = 0; i < 1000; ++i) {
    p50.Add(static_cast<double>(i));
    p90.Add(static_cast<double>(i));
  }
  EXPECT_LT(p50.value(), p90.value());
  EXPECT_NEAR(p50.value(), 500.0, 25.0);
  EXPECT_NEAR(p90.value(), 900.0, 25.0);
}

}  // namespace
}  // namespace hs
